package testkit

import (
	"fmt"
	"math"
	"testing"
	"time"

	"accubench/internal/accubench"
	"accubench/internal/crowd"
	"accubench/internal/fleet"
	"accubench/internal/ingest"
	"accubench/internal/silicon"
	"accubench/internal/sim"
	"accubench/internal/soc"
	"accubench/internal/units"
)

// Fixtures: seeded, deterministic inputs shared by tests across the tree.
// Two families live here. The synthetic ones are closed-form — a clean
// geometric cooldown whose asymptote the backend's Aitken extrapolation
// recovers *exactly*, so acceptance and rejection are provable, not
// tuned. The wild ones run the real simulator (quick mode) so e2e tests
// exercise the same payloads a genuine fleet would upload.

// CooldownSpec describes a synthetic exponential cooldown trace.
type CooldownSpec struct {
	// Asymptote is the temperature the trace decays toward (the raw
	// value EstimateAmbient recovers, before any idle-bias correction).
	Asymptote units.Celsius
	// Amplitude is how far above the asymptote the trace starts.
	Amplitude float64
	// Tau is the exponential time constant.
	Tau time.Duration
	// Polls and Poll set the sampling: readings at Poll, 2·Poll, ….
	Polls int
	// Poll is the sampling interval.
	Poll time.Duration
}

// DefaultCooldownSpec returns a trace shaped like a real quick-mode
// cooldown: 36 polls at 10 s, starting 12 °C hot with a 6-minute time
// constant. The tail past the 2-minute estimator cutoff holds 25 polls —
// comfortably beyond the 9-poll minimum — and its block-mean decay is
// steep enough (Δ ≈ 3 °C) to clear the estimator's flatness guards.
func DefaultCooldownSpec(asymptote units.Celsius) CooldownSpec {
	return CooldownSpec{
		Asymptote: asymptote,
		Amplitude: 12,
		Tau:       6 * time.Minute,
		Polls:     36,
		Poll:      10 * time.Second,
	}
}

// Trace renders the spec as cooldown samples: T(t) = asymptote +
// amplitude·e^(−t/τ). Block means of this geometric decay are themselves
// geometric, so Aitken's Δ² recovers the asymptote exactly (to float
// rounding) — the property the Accepted/Rejected payload fixtures build
// on.
func (c CooldownSpec) Trace() []accubench.CooldownSample {
	out := make([]accubench.CooldownSample, c.Polls)
	for i := range out {
		at := time.Duration(i+1) * c.Poll
		out[i] = accubench.CooldownSample{
			At:      at,
			Reading: c.Asymptote + units.Celsius(c.Amplitude*math.Exp(-at.Seconds()/c.Tau.Seconds())),
		}
	}
	return out
}

// SyntheticCooldown returns the default-shaped trace decaying toward
// asymptote.
func SyntheticCooldown(asymptote units.Celsius) []accubench.CooldownSample {
	return DefaultCooldownSpec(asymptote).Trace()
}

// AcceptedCooldown returns a trace the policy provably accepts with the
// estimate landing on exactly ambient: the raw asymptote is ambient plus
// the policy's idle bias, which EstimateAmbient recovers and the bias
// correction removes. ambient must lie inside the policy's window.
func AcceptedCooldown(t *testing.T, policy crowd.Policy, ambient units.Celsius) []accubench.CooldownSample {
	t.Helper()
	if !policy.Accept(ambient) {
		t.Fatalf("testkit: ambient %v is outside the acceptance window [%v, %v] — fixture would not be accepted",
			ambient, policy.AcceptLo, policy.AcceptHi)
	}
	return SyntheticCooldown(ambient + units.Celsius(policy.IdleBias))
}

// RejectedCooldown returns a well-formed trace the policy provably
// rejects: the corrected estimate lands 8 °C above the window's top.
func RejectedCooldown(policy crowd.Policy) []accubench.CooldownSample {
	hot := policy.AcceptHi + 8
	return SyntheticCooldown(hot + units.Celsius(policy.IdleBias))
}

// AcceptedPayload wires an accepted cooldown into an upload-ready wire
// payload.
func AcceptedPayload(t *testing.T, policy crowd.Policy, device string, score float64, ambient units.Celsius) []byte {
	t.Helper()
	raw, err := ingest.Marshal(device, "Nexus 5", score, AcceptedCooldown(t, policy, ambient))
	if err != nil {
		t.Fatalf("testkit: marshaling accepted payload: %v", err)
	}
	return raw
}

// RejectedPayload wires a rejected cooldown into an upload-ready wire
// payload.
func RejectedPayload(t *testing.T, policy crowd.Policy, device string, score float64) []byte {
	t.Helper()
	raw, err := ingest.Marshal(device, "Nexus 5", score, RejectedCooldown(policy))
	if err != nil {
		t.Fatalf("testkit: marshaling rejected payload: %v", err)
	}
	return raw
}

// MalformedPayloads is a corpus of uploads the decoder must refuse —
// broken JSON, schema violations, and physically implausible values. The
// ingest fuzz target seeds from it; the e2e tests post it and watch the
// decode-error counter.
func MalformedPayloads() [][]byte {
	return [][]byte{
		nil,
		[]byte(""),
		[]byte("{"),
		[]byte("not json at all"),
		[]byte(`[]`),
		[]byte(`{"device":"","model":"Nexus 5","score":1000,"cooldown":[]}`),
		[]byte(`{"device":"d","model":"","score":1000,"cooldown":[]}`),
		[]byte(`{"device":"d","model":"Nexus 5","score":-3,"cooldown":[]}`),
		[]byte(`{"device":"d","model":"Nexus 5","score":"fast","cooldown":[]}`),
		// Non-increasing timestamps.
		[]byte(`{"device":"d","model":"Nexus 5","score":1000,"cooldown":[{"at_s":20,"temp_c":30},{"at_s":10,"temp_c":29}]}`),
		// Temperature outside the plausible band.
		[]byte(`{"device":"d","model":"Nexus 5","score":1000,"cooldown":[{"at_s":10,"temp_c":900}]}`),
	}
}

// WildSubmission pairs a real simulated upload with its hidden ground
// truth.
type WildSubmission struct {
	// Device is the unit name carried in the payload.
	Device string
	// Raw is the upload-ready wire payload.
	Raw []byte
	// Score is the benchmark score inside the payload.
	Score float64
	// TrueAmbient is the ground-truth ambient the backend never sees.
	TrueAmbient units.Celsius
	// TrueLeakage is the unit's process corner.
	TrueLeakage float64
}

// WildFleet simulates n in-the-wild devices of the named model end to
// end — silicon-lottery draw, quick ACCUBENCH run, cooldown trace — and
// returns their wire payloads with ground truth attached. Everything
// derives from seed, so the same call always yields the same bytes.
func WildFleet(t *testing.T, modelName string, n int, seed int64, ambientLo, ambientHi units.Celsius) []WildSubmission {
	t.Helper()
	model, err := soc.ModelByName(modelName)
	if err != nil {
		t.Fatalf("testkit: %v", err)
	}
	src := sim.NewSource(seed, "testkit-wildfleet")
	lottery := silicon.Lottery{Sigma: 0.55, Bins: model.SoC.Bins, BinNoise: 0.35}
	corners, err := lottery.Draw(src, n)
	if err != nil {
		t.Fatalf("testkit: drawing lottery: %v", err)
	}
	out := make([]WildSubmission, n)
	for i, corner := range corners {
		dev := crowd.WildDevice{
			Unit:    fleet.Unit{Name: fmt.Sprintf("wild-%03d", i), ModelName: model.Name, Corner: corner},
			Ambient: units.Celsius(src.Uniform(float64(ambientLo), float64(ambientHi))),
			Seed:    seed*1000 + int64(i),
			Quick:   true,
		}
		sub, err := dev.Benchmark()
		if err != nil {
			t.Fatalf("testkit: benchmarking %s: %v", dev.Unit.Name, err)
		}
		raw, err := ingest.Marshal(sub.Device, model.Name, sub.Score, sub.CooldownReadings)
		if err != nil {
			t.Fatalf("testkit: marshaling %s: %v", dev.Unit.Name, err)
		}
		out[i] = WildSubmission{
			Device:      sub.Device,
			Raw:         raw,
			Score:       sub.Score,
			TrueAmbient: dev.Ambient,
			TrueLeakage: corner.Leakage,
		}
	}
	return out
}
