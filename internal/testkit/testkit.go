// Package testkit is the repository's shared verification harness. The
// paper's whole contribution is repeatability — ACCUBENCH exists because
// naive benchmarking is too noisy to quantify 2–14% effects — so the
// reproduction holds itself to the same standard: simulator outputs are
// locked byte-for-byte against golden files, cross-package physics
// invariants are expressed once and asserted everywhere, and deterministic
// fixtures give every test the same canned fleets and wire payloads.
//
// Three tools live here:
//
//   - Golden / GoldenJSON — golden-trace regression. A test renders its
//     result deterministically and compares it byte-for-byte against a
//     checked-in file under testdata/. Intentional changes are recorded by
//     rerunning with -update and reviewing the diff like any other code
//     change; silent drift fails loudly with a line-level diff.
//   - Check* — reusable invariant checkers (thermal convergence and
//     monotonicity, governor cap discipline, energy-equals-integral,
//     ingest counter conservation) shared by property tests across
//     packages.
//   - fixtures.go — seeded, deterministic fixtures: synthetic cooldown
//     decays, wire payloads the acceptance policy provably accepts or
//     rejects, malformed-upload corpora, and fully simulated wild fleets.
//
// Determinism caveat: the simulation is bit-for-bit reproducible for a
// given architecture and Go toolchain, but Go permits floating-point
// fusing (FMA) to differ across GOARCH, so goldens are regenerated — not
// hand-edited — when the build platform changes.
package testkit

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// update rewrites golden files instead of comparing against them:
//
//	go test ./... -update
//
// The flag is registered once here; every test package that imports
// testkit shares it.
var update = flag.Bool("update", false, "rewrite golden files under testdata/ with current output")

// Updating reports whether the test run is regenerating golden files.
func Updating() bool { return *update }

// GoldenPath returns the on-disk location of a named golden file,
// relative to the calling test's package directory.
func GoldenPath(name string) string {
	return filepath.Join("testdata", name+".golden")
}

// Golden compares got against the named golden file byte-for-byte. Under
// -update it (re)writes the file instead and never fails. The failure
// message carries a line-level diff so drift is diagnosable from CI logs
// alone.
func Golden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := GoldenPath(name)
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatalf("testkit: creating %s: %v", filepath.Dir(path), err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatalf("testkit: writing golden %s: %v", path, err)
		}
		t.Logf("testkit: wrote %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("testkit: missing golden %s (create it with `go test -update`): %v", path, err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("testkit: output drifted from golden %s\n%s\n(if the change is intentional, regenerate with `go test -update` and review the diff)",
			path, DiffLines(want, got))
	}
}

// GoldenJSON marshals v deterministically (see MarshalCanonical) and
// compares it against the named golden file.
func GoldenJSON(t *testing.T, name string, v any) {
	t.Helper()
	Golden(t, name, MarshalCanonical(t, v))
}

// MarshalCanonical renders v as indented JSON with a trailing newline.
// encoding/json sorts map keys and formats floats deterministically, so
// equal values always produce equal bytes — the property every golden
// and every run-twice determinism test in the tree relies on.
func MarshalCanonical(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		t.Fatalf("testkit: marshaling %T: %v", v, err)
	}
	return append(b, '\n')
}

// DiffLines renders a compact line diff between two byte slices: the
// first differing line with context, plus a summary of the tail. It is
// intentionally simple — golden drift is investigated by regenerating,
// not by patching the golden from the diff.
func DiffLines(want, got []byte) string {
	wl := strings.Split(string(want), "\n")
	gl := strings.Split(string(got), "\n")
	n := len(wl)
	if len(gl) < n {
		n = len(gl)
	}
	for i := 0; i < n; i++ {
		if wl[i] == gl[i] {
			continue
		}
		var b strings.Builder
		fmt.Fprintf(&b, "first difference at line %d:\n", i+1)
		for j := max(0, i-2); j < i; j++ {
			fmt.Fprintf(&b, "    %s\n", wl[j])
		}
		fmt.Fprintf(&b, "  - %s\n  + %s", wl[i], gl[i])
		if rem := len(wl) - i - 1; rem > 0 {
			fmt.Fprintf(&b, "\n  (%d more golden lines follow)", rem)
		}
		return b.String()
	}
	return fmt.Sprintf("outputs agree for %d lines, then lengths differ: golden has %d lines, got %d", n, len(wl), len(gl))
}
