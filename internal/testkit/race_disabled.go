//go:build !race

package testkit

// RaceEnabled reports whether the binary was built with -race. See the
// race-tagged twin for why alloc assertions consult it.
const RaceEnabled = false
