package testkit

import (
	"strconv"
	"strings"
	"testing"
	"time"

	"accubench/internal/governor"
	"accubench/internal/ingest"
	"accubench/internal/monsoon"
	"accubench/internal/soc"
	"accubench/internal/thermal"
	"accubench/internal/trace"
	"accubench/internal/units"
)

// This file holds the cross-package physics and pipeline invariants as
// reusable checkers. Each checker asserts a law the paper's methodology
// depends on — laws that must hold for every handset model and every
// policy, not just the calibrated five, so they are written against the
// interfaces rather than the catalog.

// CheckConvergesToAmbient asserts the RC thermal model's boundary
// behaviour: with no injected power, a body released from any initial
// temperature relaxes monotonically toward the ambient and settles there.
// This is the physical premise of ACCUBENCH's cooldown phase — and of the
// crowd backend's ambient extrapolation, which assumes the decay's
// asymptote *is* the ambient.
func CheckConvergesToAmbient(t *testing.T, body thermal.PhoneBody, ambient, from units.Celsius) {
	t.Helper()
	nw, die, cs, err := body.Build(ambient)
	if err != nil {
		t.Fatalf("testkit: building body: %v", err)
	}
	if err := nw.SetTemperature(die, from); err != nil {
		t.Fatal(err)
	}
	if err := nw.SetTemperature(cs, from); err != nil {
		t.Fatal(err)
	}
	gap := func() float64 {
		d, err := nw.Temperature(die)
		if err != nil {
			t.Fatal(err)
		}
		g := float64(d - ambient)
		if g < 0 {
			return -g
		}
		return g
	}
	prev := gap()
	const step = time.Second
	for elapsed := time.Duration(0); elapsed < 2*time.Hour; elapsed += step {
		nw.Step(step)
		g := gap()
		// Monotone relaxation: the die never moves away from the ambient
		// (tiny epsilon for the last bits of float noise at equilibrium).
		if g > prev+1e-9 {
			t.Fatalf("testkit: die moved away from ambient at %v: |ΔT| %.6f°C after %.6f°C (from %v toward %v)",
				elapsed, g, prev, from, ambient)
		}
		prev = g
		if g < 0.01 {
			return
		}
	}
	t.Fatalf("testkit: die never converged to ambient %v from %v: still %.3f°C away after 2h", ambient, from, prev)
}

// CheckMonotoneInPower asserts that the equilibrium die temperature is
// strictly increasing in injected power and matches the closed-form
// steady state — the mechanism that makes leaky silicon hit trip points
// sooner. powers must be sorted ascending.
func CheckMonotoneInPower(t *testing.T, body thermal.PhoneBody, ambient units.Celsius, powers []units.Watts) {
	t.Helper()
	prev := float64(ambient) - 1
	for _, p := range powers {
		nw, die, _, err := body.Build(ambient)
		if err != nil {
			t.Fatalf("testkit: building body: %v", err)
		}
		// Run to equilibrium: inject p each step until the die stops moving.
		const step = time.Second
		last := float64(ambient)
		for elapsed := time.Duration(0); ; elapsed += step {
			if elapsed > 4*time.Hour {
				t.Fatalf("testkit: no equilibrium at %v injected after 4h", p)
			}
			if err := nw.Inject(die, p); err != nil {
				t.Fatal(err)
			}
			nw.Step(step)
			d, err := nw.Temperature(die)
			if err != nil {
				t.Fatal(err)
			}
			if diff := float64(d) - last; diff < 1e-7 && diff > -1e-7 {
				break
			}
			last = float64(d)
		}
		want := float64(body.SteadyStateDie(ambient, p))
		if last-want > 0.1 || want-last > 0.1 {
			t.Errorf("testkit: equilibrium die at %v = %.2f°C, closed form says %.2f°C", p, last, want)
		}
		if last <= prev {
			t.Errorf("testkit: equilibrium die at %v = %.2f°C not above %.2f°C at the lower power", p, last, prev)
		}
		prev = last
	}
}

// CheckEngineRespectsPolicy drives a thermal engine over a synthetic
// temperature sweep — cool, ramp past every trip point, hold hot, cool
// back down — and asserts the cap discipline the paper's §IV-B mechanism
// depends on: the cap always sits on the cluster's ladder, never exceeds
// the maximum OPP, never goes below the policy floor, only steps down at
// or above the trip point, and hotplug never takes more cores offline
// than the policy allows.
func CheckEngineRespectsPolicy(t *testing.T, policy soc.ThermalPolicy, big soc.Cluster) {
	t.Helper()
	eng := governor.NewEngine(policy, big, 0)
	trip := float64(policy.ThrottleAt)
	profile := func(now time.Duration) units.Celsius {
		s := now.Seconds()
		switch {
		case s < 30: // cool start
			return units.Celsius(trip - 30)
		case s < 90: // ramp through the trip point and past core-offline
			return units.Celsius(trip - 30 + (s-30)*(45.0/60.0))
		case s < 150: // hold hot
			return units.Celsius(trip + 15)
		default: // cool back below the hysteresis band
			return units.Celsius(trip - 30)
		}
	}
	floor := big.OPPs[0]
	if policy.MinCapFreq > 0 {
		floor = governor.ClampToLadder(big, policy.MinCapFreq)
	}
	maxOffline := big.Cores - policy.MinOnlineCores
	if policy.MinOnlineCores <= 0 {
		maxOffline = big.Cores
	}
	prevCap := eng.Cap()
	const step = 250 * time.Millisecond
	for now := time.Duration(0); now < 210*time.Second; now += step {
		die := profile(now)
		eng.Poll(now, die)
		cap := eng.Cap()
		if cap > big.MaxFreq() {
			t.Fatalf("testkit: cap %v above the cluster maximum %v at %v", cap, big.MaxFreq(), now)
		}
		if cap < floor {
			t.Fatalf("testkit: cap %v below the policy floor %v at %v (die %v)", cap, floor, now, die)
		}
		if snapped := governor.ClampToLadder(big, cap); snapped != cap {
			t.Fatalf("testkit: cap %v is not on the cluster ladder at %v", cap, now)
		}
		if cap < prevCap && float64(die) < trip {
			t.Fatalf("testkit: cap stepped down %v → %v at %v with die %v below the %v trip",
				prevCap, cap, now, die, policy.ThrottleAt)
		}
		if cap > prevCap && float64(die) > trip-policy.Hysteresis {
			t.Fatalf("testkit: cap stepped up %v → %v at %v with die %v inside the hysteresis band",
				prevCap, cap, now, die)
		}
		// The governor never outruns the thermal cap: whatever the governor
		// wants, the effective frequency obeys the engine.
		for _, g := range []governor.Governor{governor.Performance{}, governor.Userspace{Freq: big.MaxFreq()}} {
			if eff := governor.Effective(g, big, cap, big.MaxFreq()); eff > cap {
				t.Fatalf("testkit: %s runs %v above the thermal cap %v at %v", g.Name(), eff, cap, now)
			}
		}
		if off := eng.OfflineBigCores(); off < 0 || off > maxOffline {
			t.Fatalf("testkit: %d cores offline at %v, policy allows at most %d", off, now, maxOffline)
		}
		prevCap = cap
	}
	if eng.Cap() != big.MaxFreq() {
		t.Errorf("testkit: cap %v did not recover to %v after cooling down", eng.Cap(), big.MaxFreq())
	}
}

// TrapezoidEnergy reproduces the Monsoon's integration rule over a power
// trace: starting from zero power at start, trapezoids between successive
// samples in (start, end]. It is the reference for
// CheckEnergyMatchesTrace.
func TrapezoidEnergy(samples []trace.Sample, start, end time.Duration) units.Joules {
	var e float64
	prevAt, prevP := start, 0.0
	for _, s := range samples {
		if s.At <= start || s.At > end {
			continue
		}
		e += (prevP + s.Value) / 2 * (s.At - prevAt).Seconds()
		prevAt, prevP = s.At, s.Value
	}
	return units.Joules(e)
}

// CheckEnergyMatchesTrace asserts energy-equals-the-integral-of-power:
// the Monsoon's reported energy over a measurement window must equal the
// trapezoidal integral of the device's own power trace over that window.
// The monitor and the trace observe the same samples through different
// code paths, so any drift means one of the two accounting pipelines is
// wrong.
func CheckEnergyMatchesTrace(t *testing.T, powerTrace []trace.Sample, start, end time.Duration, meas monsoon.Measurement) {
	t.Helper()
	want := float64(TrapezoidEnergy(powerTrace, start, end))
	got := float64(meas.Energy)
	if want == 0 {
		t.Fatalf("testkit: power trace integrates to zero over [%v, %v] — empty window?", start, end)
	}
	rel := (got - want) / want
	if rel < 0 {
		rel = -rel
	}
	if rel > 1e-9 {
		t.Errorf("testkit: measured energy %.6fJ != ∫P dt %.6fJ over [%v, %v] (rel err %.2e)",
			got, want, start, end, rel)
	}
}

// CheckCounterFlow asserts the ingest pipeline's conservation laws, valid
// after a graceful drain: every received upload is accounted for exactly
// once, and every stored record carries exactly one verdict. These are
// the "ingest never drops an accepted submission" books.
func CheckCounterFlow(t *testing.T, c ingest.Counters) {
	t.Helper()
	if c.Received != c.DecodeErrors+c.Aborted+c.Stored+c.WALFailed {
		t.Errorf("testkit: counter flow broken: received %d != decode errors %d + aborted %d + stored %d + wal failed %d",
			c.Received, c.DecodeErrors, c.Aborted, c.Stored, c.WALFailed)
	}
	if c.Stored != c.Accepted+c.Rejected {
		t.Errorf("testkit: verdicts broken: stored %d != accepted %d + rejected %d",
			c.Stored, c.Accepted, c.Rejected)
	}
	if c.WALAppended+c.WALFailed > 0 && c.Stored != c.WALAppended {
		t.Errorf("testkit: durability broken: stored %d != wal appended %d — a record became visible without committing",
			c.Stored, c.WALAppended)
	}
	if c.Aborted == 0 {
		if c.Decoded != c.Received-c.DecodeErrors {
			t.Errorf("testkit: decoded %d != received %d - decode errors %d", c.Decoded, c.Received, c.DecodeErrors)
		}
		if c.Evaluated+c.EstimateFailures != c.Decoded {
			t.Errorf("testkit: evaluated %d + estimate failures %d != decoded %d",
				c.Evaluated, c.EstimateFailures, c.Decoded)
		}
	}
}

// CheckHistogramExposition asserts the structural laws every histogram
// in a Prometheus text exposition must obey: within a series the
// cumulative bucket counts are non-decreasing in le order, and the
// +Inf bucket equals the series' _count — i.e. every observation landed
// in exactly one bucket and the buckets sum to the total. Label values
// must not contain commas (none of crowdd's do).
func CheckHistogramExposition(t *testing.T, exposition string) {
	t.Helper()
	type series struct {
		prev   uint64 // cumulative count of the previous bucket line
		inf    uint64
		hasInf bool
	}
	hists := make(map[string]*series)
	counts := make(map[string]uint64)
	for _, line := range strings.Split(exposition, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		// The value follows the LAST space: label values may hold spaces
		// (route="POST /v1/submissions").
		cut := strings.LastIndex(line, " ")
		if cut < 0 {
			continue
		}
		id, val := line[:cut], line[cut+1:]
		name, labels, _ := strings.Cut(id, "{")
		labels = strings.TrimSuffix(labels, "}")
		switch {
		case strings.HasSuffix(name, "_bucket"):
			n, err := strconv.ParseUint(val, 10, 64)
			if err != nil {
				t.Errorf("testkit: bucket line %q has a non-integer count", line)
				continue
			}
			// The series key is the name plus the labels minus le.
			var le string
			var rest []string
			for _, kv := range strings.Split(labels, ",") {
				if v, found := strings.CutPrefix(kv, `le="`); found {
					le = strings.TrimSuffix(v, `"`)
				} else if kv != "" {
					rest = append(rest, kv)
				}
			}
			key := strings.TrimSuffix(name, "_bucket") + "{" + strings.Join(rest, ",") + "}"
			s := hists[key]
			if s == nil {
				s = &series{}
				hists[key] = s
			}
			if n < s.prev {
				t.Errorf("testkit: %s bucket le=%q count %d below the previous bucket's %d — cumulative counts must not decrease",
					key, le, n, s.prev)
			}
			s.prev = n
			if le == "+Inf" {
				s.inf, s.hasInf = n, true
			}
		case strings.HasSuffix(name, "_count"):
			if n, err := strconv.ParseUint(val, 10, 64); err == nil {
				key := strings.TrimSuffix(name, "_count") + "{" + labels + "}"
				counts[key] = n
			}
		}
	}
	if len(hists) == 0 {
		t.Error("testkit: exposition holds no histogram series")
	}
	for key, s := range hists {
		if !s.hasInf {
			t.Errorf("testkit: histogram %s has no +Inf bucket", key)
			continue
		}
		total, ok := counts[key]
		if !ok {
			t.Errorf("testkit: histogram %s has buckets but no _count line", key)
			continue
		}
		if s.inf != total {
			t.Errorf("testkit: histogram %s buckets sum to %d but _count says %d — an observation escaped the buckets",
				key, s.inf, total)
		}
	}
}

// CheckMetricsFlow asserts the same conservation laws over a parsed
// /metrics exposition — the black-box view of CheckCounterFlow, used by
// the e2e tests that only see the HTTP surface.
func CheckMetricsFlow(t *testing.T, m map[string]uint64) {
	t.Helper()
	CheckCounterFlow(t, ingest.Counters{
		Received:         m["crowdd_received_total"],
		Decoded:          m["crowdd_decoded_total"],
		DecodeErrors:     m["crowdd_decode_errors_total"],
		Evaluated:        m["crowdd_evaluated_total"],
		EstimateFailures: m["crowdd_estimate_failures_total"],
		Accepted:         m["crowdd_accepted_total"],
		Rejected:         m["crowdd_rejected_total"],
		Stored:           m["crowdd_stored_total"],
		Aborted:          m["crowdd_aborted_total"],
		WALAppended:      m["crowdd_wal_appended_total"],
		WALFailed:        m["crowdd_wal_failed_total"],
	})
	// The store may hold more than this pipeline run stored: boot
	// recovery restores records committed by previous runs, surfaced as
	// crowdd_wal_restored_records (absent, hence zero, in-memory).
	if m["crowdd_store_records"] != m["crowdd_stored_total"]+m["crowdd_wal_restored_records"] {
		t.Errorf("testkit: store holds %d records but the pipeline stored %d and recovery restored %d",
			m["crowdd_store_records"], m["crowdd_stored_total"], m["crowdd_wal_restored_records"])
	}
	if m["crowdd_store_accepted_records"] != m["crowdd_accepted_total"]+m["crowdd_wal_restored_accepted_records"] {
		t.Errorf("testkit: store holds %d accepted records but the pipeline accepted %d and recovery restored %d",
			m["crowdd_store_accepted_records"], m["crowdd_accepted_total"], m["crowdd_wal_restored_accepted_records"])
	}
}

// CheckReplicationMetrics asserts the replication subsystem's
// conservation laws over one cluster node's parsed /metrics exposition.
// Valid whenever the node's counters are quiescent (shippers drained,
// no reconcile round in flight) — the chaos harness scrapes after
// convergence. These are the books that say every replicated record is
// accounted for: batching never invents records, anti-entropy repairs
// flow through the same apply path as live ships, and cluster nodes
// extend the store-provenance law with the replication leg.
func CheckReplicationMetrics(t *testing.T, m map[string]uint64) {
	t.Helper()
	// A batch holds at least one record.
	if m["crowdd_repl_ship_batches_total"] > m["crowdd_repl_ship_records_total"] {
		t.Errorf("testkit: %d ship batches carried only %d records — empty batches shipped",
			m["crowdd_repl_ship_batches_total"], m["crowdd_repl_ship_records_total"])
	}
	// A repair is a digest mismatch that pulled records; catch-up is a
	// subclass of repair.
	if m["crowdd_reconcile_snapshot_catchups_total"] > m["crowdd_reconcile_repairs_total"] {
		t.Errorf("testkit: %d snapshot catch-ups exceed %d repairs",
			m["crowdd_reconcile_snapshot_catchups_total"], m["crowdd_reconcile_repairs_total"])
	}
	// Every reconcile-pulled record went through ApplyRemote, which
	// counted it as applied or as a dup.
	if m["crowdd_reconcile_pulled_total"] > m["crowdd_repl_applied_total"]+m["crowdd_repl_apply_dups_total"] {
		t.Errorf("testkit: reconcile pulled %d records but ApplyRemote only saw %d applied + %d dups",
			m["crowdd_reconcile_pulled_total"], m["crowdd_repl_applied_total"], m["crowdd_repl_apply_dups_total"])
	}
	// Store provenance on a cluster node: every record was stored by this
	// node's pipeline, applied from a peer, or restored by boot recovery.
	if m["crowdd_store_records"] != m["crowdd_stored_total"]+m["crowdd_repl_applied_total"]+m["crowdd_wal_restored_records"] {
		t.Errorf("testkit: store holds %d records but pipeline stored %d + replication applied %d + recovery restored %d",
			m["crowdd_store_records"], m["crowdd_stored_total"], m["crowdd_repl_applied_total"], m["crowdd_wal_restored_records"])
	}
	// An ack timeout is a ShipWait that gave up; it implies the 503
	// "unreplicated" path, surfaced to clients for retry.
	if m["crowdd_repl_ack_timeouts_total"] > 0 && m["crowdd_repl_ship_records_total"] == 0 && m["crowdd_repl_ship_dropped_total"] == 0 {
		t.Errorf("testkit: %d ack timeouts with no records ever enqueued",
			m["crowdd_repl_ack_timeouts_total"])
	}
}
