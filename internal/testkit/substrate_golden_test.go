package testkit

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"testing"
	"time"

	"accubench/internal/device"
	"accubench/internal/monsoon"
	"accubench/internal/silicon"
	"accubench/internal/soc"
)

// Before/after equivalence goldens for the simulation substrate. The
// device inner loop (thermal integration, voltage resolution, power
// evaluation, trace recording) is performance-optimized over time —
// precomputed integrator state, scratch reuse, memoized lookups — and
// every one of those optimizations must be bit-identical to the naive
// arithmetic. These goldens pin a fixed-seed five-minute device run:
// the full CSV trace rendering is hashed (byte identity) and summarized
// at full float precision (reviewability). They were generated from the
// unoptimized reference implementation and are never regenerated as part
// of an optimization change — a diff here means the optimization changed
// the physics.

// traceDigest is the golden projection of one device run: a SHA-256 over
// the exact CSV bytes plus a human-reviewable per-series summary.
type traceDigest struct {
	Model    string         `json:"model"`
	CSVSHA   string         `json:"csv_sha256"`
	CSVBytes int            `json:"csv_bytes"`
	Series   []seriesDigest `json:"series"`
}

type seriesDigest struct {
	Name    string  `json:"name"`
	Unit    string  `json:"unit"`
	Samples int     `json:"samples"`
	First   float64 `json:"first"`
	Last    float64 `json:"last"`
	Min     float64 `json:"min"`
	Max     float64 `json:"max"`
}

// runSubstrate drives one simulated handset for five minutes of 100 ms
// control steps: four minutes under full load (throttling, hotplug, and
// on the Pixel the RBCPR temperature-dependent voltage path) and one
// minute idle (cpuidle core collapse, floor OPP). Everything derives
// from the fixed seed, so the same binary always produces the same
// bytes.
func runSubstrate(t *testing.T, modelName string, seed int64) traceDigest {
	t.Helper()
	model, err := soc.ModelByName(modelName)
	if err != nil {
		t.Fatalf("testkit: %v", err)
	}
	// Leakiest representable bin: RBCPR-era parts expose a single bin.
	bin := silicon.Bin(0)
	if model.SoC.Bins > 2 {
		bin = 2
	}
	mon := monsoon.New(model.Battery.Nominal)
	dev, err := device.New(device.Config{
		Name:    "golden-" + modelName,
		Model:   model,
		Corner:  silicon.ProcessCorner{Bin: bin, Leakage: 1.25},
		Ambient: 26,
		Seed:    seed,
		Source:  mon.Supply(),
	})
	if err != nil {
		t.Fatalf("testkit: building device: %v", err)
	}
	dev.AcquireWakelock()
	dev.StartWorkload()
	if err := dev.Run(4*time.Minute, 100*time.Millisecond); err != nil {
		t.Fatalf("testkit: busy phase: %v", err)
	}
	dev.StopWorkload()
	dev.ReleaseWakelock()
	if err := dev.Run(time.Minute, 100*time.Millisecond); err != nil {
		t.Fatalf("testkit: idle phase: %v", err)
	}

	var csv bytes.Buffer
	if err := dev.Trace().WriteCSV(&csv); err != nil {
		t.Fatalf("testkit: rendering CSV: %v", err)
	}
	sum := sha256.Sum256(csv.Bytes())
	d := traceDigest{
		Model:    modelName,
		CSVSHA:   hex.EncodeToString(sum[:]),
		CSVBytes: csv.Len(),
	}
	for _, name := range dev.Trace().Names() {
		s, ok := dev.Trace().Lookup(name)
		if !ok {
			t.Fatalf("testkit: series %q vanished", name)
		}
		first := s.Samples()[0]
		last, _ := s.Last()
		d.Series = append(d.Series, seriesDigest{
			Name:    s.Name(),
			Unit:    s.Unit(),
			Samples: s.Len(),
			First:   first.Value,
			Last:    last.Value,
			Min:     s.Min(),
			Max:     s.Max(),
		})
	}
	return d
}

// TestGoldenSubstrateNexus5 pins the static-voltage-table generation:
// Table-I lookups, msm_thermal frequency capping and the 80 °C core
// hotplug all in play.
func TestGoldenSubstrateNexus5(t *testing.T) {
	GoldenJSON(t, "substrate_nexus5_5min", runSubstrate(t, "Nexus 5", 1234))
}

// TestGoldenSubstratePixel pins the RBCPR generation: the voltage is a
// continuous function of die temperature (so any memoization that
// coarsens the temperature key shows up here), plus the LITTLE cluster
// path.
func TestGoldenSubstratePixel(t *testing.T) {
	GoldenJSON(t, "substrate_pixel_5min", runSubstrate(t, "Google Pixel", 1234))
}

// TestSubstrateRunTwiceIdentical complements the goldens platform-
// independently: two identical runs in one process must agree byte for
// byte, which catches optimization state leaking across device
// instances (shared scratch buffers, stale memo entries) even on an
// architecture whose floats differ from the golden's.
func TestSubstrateRunTwiceIdentical(t *testing.T) {
	a := runSubstrate(t, "Nexus 5", 77)
	b := runSubstrate(t, "Nexus 5", 77)
	if a.CSVSHA != b.CSVSHA || a.CSVBytes != b.CSVBytes {
		t.Fatalf("same seed, different trace bytes: %s (%d B) vs %s (%d B)",
			a.CSVSHA, a.CSVBytes, b.CSVSHA, b.CSVBytes)
	}
}
