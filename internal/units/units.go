// Package units defines strongly typed physical quantities used throughout
// the simulator: temperature, voltage, frequency, power, energy, current and
// charge. Using distinct types keeps unit errors (for example passing
// millivolts where volts are expected, or mixing die temperature with ambient
// temperature deltas) out of the electro-thermal model.
//
// All types are thin wrappers over float64 with conversion helpers and
// fmt.Stringer implementations that render values the way the paper reports
// them (°C, mV, MHz, mW, J).
package units

import (
	"fmt"
	"math"
	"time"
)

// Celsius is a temperature in degrees Celsius. The simulator works entirely
// in Celsius because every number in the paper (trip points, ambient targets,
// probe readings) is reported in °C.
type Celsius float64

// Kelvin converts the temperature to Kelvin.
func (c Celsius) Kelvin() float64 { return float64(c) + 273.15 }

// String renders the temperature as the paper does, e.g. "26.0°C".
func (c Celsius) String() string { return fmt.Sprintf("%.1f°C", float64(c)) }

// Delta returns the difference c - other as a plain float64 in °C. Deltas are
// deliberately not Celsius: adding two absolute temperatures is meaningless.
func (c Celsius) Delta(other Celsius) float64 { return float64(c - other) }

// Volts is an electric potential in volts.
type Volts float64

// Millivolts converts to millivolts, the unit used by kernel voltage tables
// (paper Table I lists bin voltages in mV).
func (v Volts) Millivolts() float64 { return float64(v) * 1000 }

// FromMillivolts builds a Volts value from a millivolt count.
func FromMillivolts(mv float64) Volts { return Volts(mv / 1000) }

// String renders e.g. "1.100V".
func (v Volts) String() string { return fmt.Sprintf("%.3fV", float64(v)) }

// MegaHertz is a clock frequency in MHz, the unit used by cpufreq OPP tables.
type MegaHertz float64

// Hertz converts to Hz.
func (f MegaHertz) Hertz() float64 { return float64(f) * 1e6 }

// GigaHertz converts to GHz.
func (f MegaHertz) GigaHertz() float64 { return float64(f) / 1000 }

// String renders e.g. "2265MHz".
func (f MegaHertz) String() string { return fmt.Sprintf("%.0fMHz", float64(f)) }

// CyclesOver returns the number of clock cycles elapsed at this frequency
// over the given duration.
func (f MegaHertz) CyclesOver(d time.Duration) float64 {
	return f.Hertz() * d.Seconds()
}

// Watts is power in watts.
type Watts float64

// Milliwatts converts to mW.
func (p Watts) Milliwatts() float64 { return float64(p) * 1000 }

// String renders e.g. "1234.5mW".
func (p Watts) String() string { return fmt.Sprintf("%.1fmW", p.Milliwatts()) }

// Over integrates constant power over a duration, yielding energy.
func (p Watts) Over(d time.Duration) Joules { return Joules(float64(p) * d.Seconds()) }

// Joules is energy in joules.
type Joules float64

// WattHours converts to Wh.
func (e Joules) WattHours() float64 { return float64(e) / 3600 }

// String renders e.g. "152.3J".
func (e Joules) String() string { return fmt.Sprintf("%.1fJ", float64(e)) }

// Amps is electric current in amperes.
type Amps float64

// Milliamps converts to mA, the unit the Monsoon monitor reports.
func (i Amps) Milliamps() float64 { return float64(i) * 1000 }

// String renders e.g. "847.0mA".
func (i Amps) String() string { return fmt.Sprintf("%.1fmA", i.Milliamps()) }

// MilliampHours is electric charge in mAh, the unit battery capacities are
// quoted in.
type MilliampHours float64

// Coulombs converts to coulombs.
func (q MilliampHours) Coulombs() float64 { return float64(q) * 3.6 }

// String renders e.g. "2300mAh".
func (q MilliampHours) String() string { return fmt.Sprintf("%.0fmAh", float64(q)) }

// Power computes P = V·I.
func Power(v Volts, i Amps) Watts { return Watts(float64(v) * float64(i)) }

// Current computes I = P/V. It returns 0 for a non-positive voltage rather
// than propagating an infinity into the sampling pipeline.
func Current(p Watts, v Volts) Amps {
	if v <= 0 {
		return 0
	}
	return Amps(float64(p) / float64(v))
}

// Farads is capacitance; the effective switching capacitance of a core is
// expressed in farads (typically on the order of nanofarads for a mobile
// core's C_eff lumped constant).
type Farads float64

// String renders in nanofarads, the natural magnitude for C_eff.
func (c Farads) String() string { return fmt.Sprintf("%.2fnF", float64(c)*1e9) }

// Clamp bounds x to [lo, hi]. It is used for sensor saturation and control
// outputs; lo must not exceed hi.
func Clamp(x, lo, hi float64) float64 {
	if lo > hi {
		panic(fmt.Sprintf("units.Clamp: lo %v > hi %v", lo, hi))
	}
	return math.Min(math.Max(x, lo), hi)
}

// Lerp linearly interpolates between a and b by t in [0,1]; t outside the
// range extrapolates, which callers that want clamping must guard.
func Lerp(a, b, t float64) float64 { return a + (b-a)*t }
