package units

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestCelsiusKelvin(t *testing.T) {
	if got := Celsius(0).Kelvin(); !almostEqual(got, 273.15, 1e-9) {
		t.Errorf("0°C = %v K, want 273.15", got)
	}
	if got := Celsius(26).Kelvin(); !almostEqual(got, 299.15, 1e-9) {
		t.Errorf("26°C = %v K, want 299.15", got)
	}
	if got := Celsius(-40).Kelvin(); !almostEqual(got, 233.15, 1e-9) {
		t.Errorf("-40°C = %v K, want 233.15", got)
	}
}

func TestCelsiusString(t *testing.T) {
	if got := Celsius(26).String(); got != "26.0°C" {
		t.Errorf("String = %q, want 26.0°C", got)
	}
}

func TestCelsiusDelta(t *testing.T) {
	if got := Celsius(80).Delta(Celsius(26)); got != 54 {
		t.Errorf("Delta = %v, want 54", got)
	}
	if got := Celsius(20).Delta(Celsius(26)); got != -6 {
		t.Errorf("Delta = %v, want -6", got)
	}
}

func TestVoltsMillivolts(t *testing.T) {
	if got := Volts(1.1).Millivolts(); !almostEqual(got, 1100, 1e-9) {
		t.Errorf("1.1V = %v mV, want 1100", got)
	}
	if got := FromMillivolts(950); !almostEqual(float64(got), 0.95, 1e-12) {
		t.Errorf("FromMillivolts(950) = %v, want 0.95", got)
	}
}

func TestVoltsRoundTrip(t *testing.T) {
	f := func(mv float64) bool {
		if math.IsNaN(mv) || math.IsInf(mv, 0) {
			return true
		}
		got := FromMillivolts(mv).Millivolts()
		return almostEqual(got, mv, math.Abs(mv)*1e-12+1e-12)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMegaHertz(t *testing.T) {
	if got := MegaHertz(2265).Hertz(); got != 2.265e9 {
		t.Errorf("Hertz = %v, want 2.265e9", got)
	}
	if got := MegaHertz(1500).GigaHertz(); got != 1.5 {
		t.Errorf("GigaHertz = %v, want 1.5", got)
	}
	if got := MegaHertz(1000).CyclesOver(2 * time.Second); got != 2e9 {
		t.Errorf("CyclesOver = %v, want 2e9", got)
	}
	if got := MegaHertz(300).String(); got != "300MHz" {
		t.Errorf("String = %q", got)
	}
}

func TestPowerEnergy(t *testing.T) {
	e := Watts(2).Over(90 * time.Second)
	if !almostEqual(float64(e), 180, 1e-9) {
		t.Errorf("2W over 90s = %v, want 180J", e)
	}
	if got := Joules(3600).WattHours(); got != 1 {
		t.Errorf("3600J = %v Wh, want 1", got)
	}
	if got := Watts(1.2345).String(); got != "1234.5mW" {
		t.Errorf("String = %q", got)
	}
}

func TestOhmsLaw(t *testing.T) {
	p := Power(Volts(4.0), Amps(0.5))
	if !almostEqual(float64(p), 2.0, 1e-12) {
		t.Errorf("Power = %v, want 2W", p)
	}
	i := Current(Watts(2.0), Volts(4.0))
	if !almostEqual(float64(i), 0.5, 1e-12) {
		t.Errorf("Current = %v, want 0.5A", i)
	}
	if got := Current(Watts(2.0), Volts(0)); got != 0 {
		t.Errorf("Current at 0V = %v, want 0", got)
	}
	if got := Current(Watts(2.0), Volts(-1)); got != 0 {
		t.Errorf("Current at -1V = %v, want 0", got)
	}
}

func TestPowerCurrentInverse(t *testing.T) {
	f := func(v, i float64) bool {
		v = math.Abs(math.Mod(v, 10)) + 0.1 // positive, bounded voltage
		i = math.Abs(math.Mod(i, 5))
		p := Power(Volts(v), Amps(i))
		back := Current(p, Volts(v))
		return almostEqual(float64(back), i, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCharge(t *testing.T) {
	if got := MilliampHours(1000).Coulombs(); got != 3600 {
		t.Errorf("1000mAh = %v C, want 3600", got)
	}
}

func TestClamp(t *testing.T) {
	cases := []struct{ x, lo, hi, want float64 }{
		{5, 0, 10, 5},
		{-5, 0, 10, 0},
		{15, 0, 10, 10},
		{0, 0, 0, 0},
	}
	for _, c := range cases {
		if got := Clamp(c.x, c.lo, c.hi); got != c.want {
			t.Errorf("Clamp(%v,%v,%v) = %v, want %v", c.x, c.lo, c.hi, got, c.want)
		}
	}
}

func TestClampPanicsOnInvertedBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Clamp(0, 1, 0) did not panic")
		}
	}()
	Clamp(0, 1, 0)
}

func TestClampProperty(t *testing.T) {
	f := func(x, a, b float64) bool {
		if math.IsNaN(x) || math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		lo, hi := math.Min(a, b), math.Max(a, b)
		got := Clamp(x, lo, hi)
		return got >= lo && got <= hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLerp(t *testing.T) {
	if got := Lerp(0, 10, 0.5); got != 5 {
		t.Errorf("Lerp = %v, want 5", got)
	}
	if got := Lerp(2, 4, 0); got != 2 {
		t.Errorf("Lerp t=0 = %v, want 2", got)
	}
	if got := Lerp(2, 4, 1); got != 4 {
		t.Errorf("Lerp t=1 = %v, want 4", got)
	}
}

func TestStringFormats(t *testing.T) {
	if got := Amps(0.847).String(); got != "847.0mA" {
		t.Errorf("Amps.String = %q", got)
	}
	if got := MilliampHours(2300).String(); got != "2300mAh" {
		t.Errorf("MilliampHours.String = %q", got)
	}
	if got := Joules(152.34).String(); got != "152.3J" {
		t.Errorf("Joules.String = %q", got)
	}
	if got := Volts(1.1).String(); got != "1.100V" {
		t.Errorf("Volts.String = %q", got)
	}
	if got := Farads(1.5e-9).String(); got != "1.50nF" {
		t.Errorf("Farads.String = %q", got)
	}
}
