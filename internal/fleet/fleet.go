// Package fleet defines the simulated counterparts of the paper's 18
// physical devices: which handset model each unit is, and the process
// corner its chip drew in the silicon lottery.
//
// The corners are *calibrated*, not arbitrary: they are chosen so that each
// model's fleet reproduces the variation bands the paper reports (Table II:
// SD-800 14%/19%, SD-805 2%/2%, SD-810 10%/12%, SD-820 4%/10%, SD-821
// 5%/9%). Calibration fixes only the chips' leakage factors — performance
// and energy numbers still *emerge* from the electro-thermal simulation;
// tests assert bands, not point values, so the dynamics stay load-bearing.
//
// Device names follow the paper where it names units (device-363 and
// device-793 on the Nexus 6P; device-488 and device-653 on the Pixel) and
// use bin labels on the Nexus 5, whose chips the paper identifies by bin.
package fleet

import (
	"fmt"

	"accubench/internal/battery"
	"accubench/internal/device"
	"accubench/internal/silicon"
	"accubench/internal/soc"
	"accubench/internal/units"
)

// Unit is one physical device of the study.
type Unit struct {
	// Name is the unit's identifier, e.g. "device-363".
	Name string
	// ModelName is the handset product, e.g. "Nexus 6P".
	ModelName string
	// Corner is the unit's silicon-lottery outcome.
	Corner silicon.ProcessCorner
}

// NewDevice instantiates the unit as a simulated device at the given ambient.
func (u Unit) NewDevice(ambient units.Celsius, seed int64, src battery.Source) (*device.Device, error) {
	m, err := soc.ModelByName(u.ModelName)
	if err != nil {
		return nil, err
	}
	return device.New(device.Config{
		Name:    u.Name,
		Model:   m,
		Corner:  u.Corner,
		Ambient: ambient,
		Seed:    seed,
		Source:  src,
	})
}

// Nexus5Units returns the paper's four SD-800 chips. The study obtained
// bins 0–4; the bin-4 chip failed mid-study, leaving bins 0–3 in the
// results (§IV-A1).
func Nexus5Units() []Unit {
	return []Unit{
		{Name: "n5-bin0", ModelName: "Nexus 5", Corner: silicon.ProcessCorner{Bin: 0, Leakage: 0.55}},
		{Name: "n5-bin1", ModelName: "Nexus 5", Corner: silicon.ProcessCorner{Bin: 1, Leakage: 1.00}},
		{Name: "n5-bin2", ModelName: "Nexus 5", Corner: silicon.ProcessCorner{Bin: 2, Leakage: 1.50}},
		{Name: "n5-bin3", ModelName: "Nexus 5", Corner: silicon.ProcessCorner{Bin: 3, Leakage: 1.72}},
	}
}

// Nexus5Bin4 returns the bin-4 chip that failed during the paper's
// experiments — kept for the Fig. 1 motivation plot, which predates the
// failure and shows bin-4 ≈ +20% energy / +18% time against bin-0.
func Nexus5Bin4() Unit {
	return Unit{Name: "n5-bin4", ModelName: "Nexus 5", Corner: silicon.ProcessCorner{Bin: 4, Leakage: 2.08}}
}

// Nexus6Units returns the paper's three SD-805 chips, which showed
// negligible (2%/2%) variation — three draws from the middle of the
// distribution.
func Nexus6Units() []Unit {
	return []Unit{
		{Name: "n6-a", ModelName: "Nexus 6", Corner: silicon.ProcessCorner{Bin: 3, Leakage: 0.98}},
		{Name: "n6-b", ModelName: "Nexus 6", Corner: silicon.ProcessCorner{Bin: 3, Leakage: 1.01}},
		{Name: "n6-c", ModelName: "Nexus 6", Corner: silicon.ProcessCorner{Bin: 3, Leakage: 1.04}},
	}
}

// Nexus6PUnits returns the paper's three SD-810 chips. All report
// "speed-bin 0"; device-363 trails device-793 by 10% performance and 12%
// energy (§IV-A2).
func Nexus6PUnits() []Unit {
	return []Unit{
		{Name: "device-793", ModelName: "Nexus 6P", Corner: silicon.ProcessCorner{Bin: 0, Leakage: 0.84}},
		{Name: "device-421", ModelName: "Nexus 6P", Corner: silicon.ProcessCorner{Bin: 0, Leakage: 1.10}},
		{Name: "device-363", ModelName: "Nexus 6P", Corner: silicon.ProcessCorner{Bin: 0, Leakage: 1.40}},
	}
}

// LGG5Units returns the paper's five SD-820 chips (4% performance, 10%
// energy variation).
func LGG5Units() []Unit {
	return []Unit{
		{Name: "g5-a", ModelName: "LG G5", Corner: silicon.ProcessCorner{Bin: 0, Leakage: 0.65}},
		{Name: "g5-b", ModelName: "LG G5", Corner: silicon.ProcessCorner{Bin: 0, Leakage: 0.88}},
		{Name: "g5-c", ModelName: "LG G5", Corner: silicon.ProcessCorner{Bin: 0, Leakage: 1.05}},
		{Name: "g5-d", ModelName: "LG G5", Corner: silicon.ProcessCorner{Bin: 0, Leakage: 1.30}},
		{Name: "g5-e", ModelName: "LG G5", Corner: silicon.ProcessCorner{Bin: 0, Leakage: 1.60}},
	}
}

// PixelUnits returns the paper's three SD-821 chips; device-488 leads
// device-653 by 7% in the Fig. 11 iterations (5%/9% overall variation).
func PixelUnits() []Unit {
	return []Unit{
		{Name: "device-488", ModelName: "Google Pixel", Corner: silicon.ProcessCorner{Bin: 0, Leakage: 0.65}},
		{Name: "device-527", ModelName: "Google Pixel", Corner: silicon.ProcessCorner{Bin: 0, Leakage: 1.00}},
		{Name: "device-653", ModelName: "Google Pixel", Corner: silicon.ProcessCorner{Bin: 0, Leakage: 1.55}},
	}
}

// Paper returns the whole study fleet keyed by model name, in Table II
// order.
func Paper() map[string][]Unit {
	return map[string][]Unit{
		"Nexus 5":      Nexus5Units(),
		"Nexus 6":      Nexus6Units(),
		"Nexus 6P":     Nexus6PUnits(),
		"LG G5":        LGG5Units(),
		"Google Pixel": PixelUnits(),
	}
}

// UnitsFor returns the fleet for one model.
func UnitsFor(modelName string) ([]Unit, error) {
	units, ok := Paper()[modelName]
	if !ok {
		return nil, fmt.Errorf("fleet: no units for model %q", modelName)
	}
	return units, nil
}

// ModelOrder returns model names in Table II order.
func ModelOrder() []string {
	return []string{"Nexus 5", "Nexus 6", "Nexus 6P", "LG G5", "Google Pixel"}
}
