package fleet

import (
	"testing"

	"accubench/internal/soc"
)

func TestPaperFleetSize(t *testing.T) {
	// Table II: 4 + 3 + 3 + 5 + 3 = 18 devices.
	counts := map[string]int{
		"Nexus 5": 4, "Nexus 6": 3, "Nexus 6P": 3, "LG G5": 5, "Google Pixel": 3,
	}
	total := 0
	for model, want := range counts {
		us, err := UnitsFor(model)
		if err != nil {
			t.Fatal(err)
		}
		if len(us) != want {
			t.Errorf("%s has %d units, want %d", model, len(us), want)
		}
		total += len(us)
	}
	if total != 18 {
		t.Errorf("fleet size = %d, want 18", total)
	}
}

func TestAllUnitsInstantiate(t *testing.T) {
	for model, us := range Paper() {
		for _, u := range us {
			d, err := u.NewDevice(26, 1, nil)
			if err != nil {
				t.Errorf("%s/%s: %v", model, u.Name, err)
				continue
			}
			if d.Model().Name != model {
				t.Errorf("%s built a %s", u.Name, d.Model().Name)
			}
		}
	}
}

func TestBin4ChipInstantiates(t *testing.T) {
	u := Nexus5Bin4()
	if _, err := u.NewDevice(26, 1, nil); err != nil {
		t.Fatal(err)
	}
	if u.Corner.Bin != 4 {
		t.Errorf("bin = %v", u.Corner.Bin)
	}
}

func TestUnitNamesFollowPaper(t *testing.T) {
	names := map[string]bool{}
	for _, us := range Paper() {
		for _, u := range us {
			if names[u.Name] {
				t.Errorf("duplicate unit name %q", u.Name)
			}
			names[u.Name] = true
		}
	}
	// The units the paper names explicitly.
	for _, want := range []string{"device-363", "device-793", "device-488", "device-653"} {
		if !names[want] {
			t.Errorf("fleet missing the paper's %s", want)
		}
	}
}

func TestCornersOrderedByLeakage(t *testing.T) {
	// Fleets are declared least→most leaky so experiment tables read like
	// the paper's figures.
	for model, us := range Paper() {
		for i := 1; i < len(us); i++ {
			if us[i].Corner.Leakage < us[i-1].Corner.Leakage {
				t.Errorf("%s: unit %d leakage %.2f below unit %d's %.2f",
					model, i, us[i].Corner.Leakage, i-1, us[i-1].Corner.Leakage)
			}
		}
	}
}

func TestNexus5BinsAscend(t *testing.T) {
	// On the SD-800 the bin label follows leakage (voltage binning).
	us := Nexus5Units()
	for i := 1; i < len(us); i++ {
		if us[i].Corner.Bin <= us[i-1].Corner.Bin {
			t.Errorf("bins not ascending: %v then %v", us[i-1].Corner.Bin, us[i].Corner.Bin)
		}
	}
}

func TestRBCPREraUnitsAllBinZero(t *testing.T) {
	// "All our devices reported being on 'speed-bin 0'" (§IV-A2); SD-820/821
	// expose no bins at all, modelled the same way.
	for _, model := range []string{"Nexus 6P", "LG G5", "Google Pixel"} {
		us, err := UnitsFor(model)
		if err != nil {
			t.Fatal(err)
		}
		for _, u := range us {
			if u.Corner.Bin != 0 {
				t.Errorf("%s reports bin %v, want 0", u.Name, u.Corner.Bin)
			}
		}
	}
}

func TestModelOrderMatchesTableII(t *testing.T) {
	want := []string{"Nexus 5", "Nexus 6", "Nexus 6P", "LG G5", "Google Pixel"}
	got := ModelOrder()
	if len(got) != len(want) {
		t.Fatalf("order length = %d", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("order[%d] = %s, want %s", i, got[i], want[i])
		}
	}
	// Every ordered model resolves in the catalog.
	for _, name := range got {
		if _, err := soc.ModelByName(name); err != nil {
			t.Errorf("model %q not in catalog: %v", name, err)
		}
	}
}

func TestUnitsForUnknown(t *testing.T) {
	if _, err := UnitsFor("Galaxy S8"); err == nil {
		t.Error("unknown model accepted")
	}
}

func TestUnitNewDeviceUnknownModel(t *testing.T) {
	u := Unit{Name: "x", ModelName: "nope"}
	if _, err := u.NewDevice(26, 1, nil); err == nil {
		t.Error("unknown model instantiated")
	}
}
