package device

import (
	"math"
	"strings"
	"testing"
	"time"

	"accubench/internal/battery"
	"accubench/internal/governor"
	"accubench/internal/silicon"
	"accubench/internal/soc"
	"accubench/internal/units"
	"accubench/internal/workload"
)

func nexus5(t *testing.T, corner silicon.ProcessCorner) *Device {
	t.Helper()
	d, err := New(Config{
		Name:    "test-n5",
		Model:   soc.Nexus5(),
		Corner:  corner,
		Ambient: 26,
		Seed:    42,
	})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func typicalCorner() silicon.ProcessCorner {
	return silicon.ProcessCorner{Bin: 3, Leakage: 1.0}
}

func TestNewValidation(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
	}{
		{"unnamed", Config{Model: soc.Nexus5(), Corner: typicalCorner()}},
		{"no model", Config{Name: "x", Corner: typicalCorner()}},
		{"bad corner", Config{Name: "x", Model: soc.Nexus5(), Corner: silicon.ProcessCorner{Leakage: -1}}},
		{"bin out of range", Config{Name: "x", Model: soc.Nexus5(), Corner: silicon.ProcessCorner{Bin: 9, Leakage: 1}}},
	}
	for _, c := range cases {
		if _, err := New(c.cfg); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestStartsInEquilibrium(t *testing.T) {
	d := nexus5(t, typicalCorner())
	if d.DieTemperature() != 26 || d.CaseTemperature() != 26 {
		t.Errorf("initial temps = %v/%v, want 26", d.DieTemperature(), d.CaseTemperature())
	}
	if d.Busy() || d.HoldsWakelock() {
		t.Error("fresh device busy or holding wakelock")
	}
	if d.CompletedIterations() != 0 {
		t.Error("fresh device has iterations")
	}
}

func TestIdleDeviceStaysCool(t *testing.T) {
	d := nexus5(t, typicalCorner())
	if err := d.Run(5*time.Minute, 100*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if d.DieTemperature() > 30 {
		t.Errorf("idle die heated to %v", d.DieTemperature())
	}
	if d.CompletedIterations() != 0 {
		t.Errorf("idle device completed %d iterations", d.CompletedIterations())
	}
}

func TestBusyDeviceHeatsAndThrottles(t *testing.T) {
	d := nexus5(t, typicalCorner())
	d.AcquireWakelock()
	d.StartWorkload()
	if err := d.Run(3*time.Minute, 100*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if d.DieTemperature() < 60 {
		t.Errorf("die only reached %v under full load", d.DieTemperature())
	}
	if d.ThrottleEvents() == 0 {
		t.Error("UNCONSTRAINED load never throttled (paper: all devices throttle)")
	}
	if d.BigFrequency() >= d.Model().SoC.Big.MaxFreq() {
		t.Errorf("still at max frequency %v after 3 minutes of load", d.BigFrequency())
	}
	if d.CompletedIterations() == 0 {
		t.Error("no workload progress")
	}
}

func TestNexus5ShedsCoreWhenVeryHot(t *testing.T) {
	// A very leaky chip at a hot ambient pushes past 80 °C and the engine
	// offlines a core — the paper's Fig. 1 mechanism.
	d, err := New(Config{
		Name:    "leaky-n5",
		Model:   soc.Nexus5(),
		Corner:  silicon.ProcessCorner{Bin: 5, Leakage: 2.4},
		Ambient: 38,
		Seed:    7,
	})
	if err != nil {
		t.Fatal(err)
	}
	d.StartWorkload()
	minOnline := 4
	for i := 0; i < 1800; i++ { // 3 minutes at 100 ms
		if err := d.Step(100 * time.Millisecond); err != nil {
			t.Fatal(err)
		}
		if d.OnlineBigCores() < minOnline {
			minOnline = d.OnlineBigCores()
		}
	}
	if minOnline == 4 {
		t.Errorf("hot leaky Nexus 5 never shed a core (die peaked at %v)", d.Trace().Names())
	}
}

func TestFixedFrequencyDoesNotThrottle(t *testing.T) {
	d := nexus5(t, typicalCorner())
	d.SetGovernor(governor.Userspace{Freq: d.Model().FixedFreq})
	d.StartWorkload()
	if err := d.Run(5*time.Minute, 100*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if d.ThrottleEvents() != 0 {
		t.Errorf("FIXED-FREQUENCY throttled %d times (die %v)", d.ThrottleEvents(), d.DieTemperature())
	}
	if d.BigFrequency() != d.Model().FixedFreq {
		t.Errorf("frequency = %v, want pinned %v", d.BigFrequency(), d.Model().FixedFreq)
	}
}

func TestFixedWorkIsFrequencyDeterministic(t *testing.T) {
	// At a pinned frequency with no throttling, iterations completed are a
	// pure function of frequency and time: two different corners complete
	// the same work (the paper uses exactly this to isolate energy).
	mk := func(leak float64, bin silicon.Bin) int {
		d, err := New(Config{
			Name:    "n5",
			Model:   soc.Nexus5(),
			Corner:  silicon.ProcessCorner{Bin: bin, Leakage: leak},
			Ambient: 26,
			Seed:    1,
		})
		if err != nil {
			t.Fatal(err)
		}
		d.SetGovernor(governor.Userspace{Freq: d.Model().FixedFreq})
		d.StartWorkload()
		if err := d.Run(5*time.Minute, 100*time.Millisecond); err != nil {
			t.Fatal(err)
		}
		return d.CompletedIterations()
	}
	quiet := mk(0.6, 0)
	leaky := mk(2.0, 5)
	if quiet != leaky {
		t.Errorf("fixed-frequency work differs: %d vs %d iterations", quiet, leaky)
	}
}

func TestLeakyChipConsumesMoreEnergyAtFixedFrequency(t *testing.T) {
	// The FIXED-FREQUENCY experiment's core claim: same work, more energy
	// on leaky silicon.
	run := func(leak float64, bin silicon.Bin) units.Joules {
		supply := battery.NewBenchSupply(3.8)
		d, err := New(Config{
			Name:    "n5",
			Model:   soc.Nexus5(),
			Corner:  silicon.ProcessCorner{Bin: bin, Leakage: leak},
			Ambient: 26,
			Seed:    1,
			Source:  supply,
		})
		if err != nil {
			t.Fatal(err)
		}
		d.SetGovernor(governor.Userspace{Freq: d.Model().FixedFreq})
		d.StartWorkload()
		if err := d.Run(5*time.Minute, 100*time.Millisecond); err != nil {
			t.Fatal(err)
		}
		return supply.EnergyDelivered()
	}
	quiet := run(0.6, 0)
	leaky := run(2.2, 5)
	if leaky <= quiet {
		t.Errorf("leaky chip energy %v not above quiet chip %v", leaky, quiet)
	}
}

func TestLeakyChipPerformsWorseUnconstrained(t *testing.T) {
	// The UNCONSTRAINED experiment's core claim: leaky silicon throttles
	// harder and completes less work in the same wall-clock window.
	run := func(leak float64, bin silicon.Bin) int {
		d, err := New(Config{
			Name:    "n5",
			Model:   soc.Nexus5(),
			Corner:  silicon.ProcessCorner{Bin: bin, Leakage: leak},
			Ambient: 26,
			Seed:    1,
		})
		if err != nil {
			t.Fatal(err)
		}
		d.StartWorkload()
		// Pre-warm 3 minutes then count 5 minutes, ACCUBENCH-style.
		if err := d.Run(3*time.Minute, 100*time.Millisecond); err != nil {
			t.Fatal(err)
		}
		d.ResetCounters()
		if err := d.Run(5*time.Minute, 100*time.Millisecond); err != nil {
			t.Fatal(err)
		}
		return d.CompletedIterations()
	}
	quiet := run(0.6, 0)
	leaky := run(2.2, 5)
	if leaky >= quiet {
		t.Errorf("leaky chip score %d not below quiet chip %d", leaky, quiet)
	}
}

func TestLGG5InputVoltageThrottle(t *testing.T) {
	// Fig. 10: at the nominal 3.85 V the G5 runs capped; at 4.4 V it flies.
	run := func(v units.Volts) int {
		d, err := New(Config{
			Name:    "g5",
			Model:   soc.LGG5(),
			Corner:  silicon.ProcessCorner{Bin: 0, Leakage: 1},
			Ambient: 26,
			Seed:    1,
			Source:  battery.NewBenchSupply(v),
		})
		if err != nil {
			t.Fatal(err)
		}
		d.StartWorkload()
		if err := d.Run(time.Minute, 100*time.Millisecond); err != nil {
			t.Fatal(err)
		}
		return d.CompletedIterations()
	}
	lo := run(3.85)
	hi := run(4.40)
	if lo >= hi {
		t.Errorf("3.85V score %d not below 4.4V score %d", lo, hi)
	}
}

func TestBigLittleDeviceRunsBothClusters(t *testing.T) {
	d, err := New(Config{
		Name:    "6p",
		Model:   soc.Nexus6P(),
		Corner:  silicon.ProcessCorner{Bin: 0, Leakage: 1},
		Ambient: 26,
		Seed:    1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if d.LittleCounters() == nil {
		t.Fatal("Nexus 6P has no LITTLE counters")
	}
	d.StartWorkload()
	if err := d.Run(30*time.Second, 100*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if d.Counters().Completed() == 0 {
		t.Error("big cluster made no progress")
	}
	if d.LittleCounters().Completed() == 0 {
		t.Error("LITTLE cluster made no progress")
	}
	if d.CompletedIterations() != d.Counters().Completed()+d.LittleCounters().Completed() {
		t.Error("CompletedIterations does not sum clusters")
	}
}

func TestQuadHasNoLittleCounters(t *testing.T) {
	d := nexus5(t, typicalCorner())
	if d.LittleCounters() != nil {
		t.Error("Nexus 5 has LITTLE counters")
	}
}

func TestSensorNoiseAndQuantization(t *testing.T) {
	d := nexus5(t, typicalCorner())
	saw := make(map[units.Celsius]bool)
	for i := 0; i < 200; i++ {
		r := d.ReadTempSensor()
		saw[r] = true
		// Quantized to 0.1 °C.
		tenths := float64(r) * 10
		if tenths != float64(int64(tenths)) {
			t.Fatalf("sensor reading %v not quantized to 0.1°C", r)
		}
		if r < 20 || r > 32 {
			t.Fatalf("sensor reading %v implausible for a 26°C idle die", r)
		}
	}
	if len(saw) < 2 {
		t.Error("sensor shows no noise at all")
	}
}

func TestTraceRecorded(t *testing.T) {
	d := nexus5(t, typicalCorner())
	d.StartWorkload()
	if err := d.Run(time.Second, 100*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"die", "case", "freq.big", "power", "cores.online"} {
		s, ok := d.Trace().Lookup(name)
		if !ok {
			t.Fatalf("missing trace series %q", name)
		}
		if s.Len() != 10 {
			t.Errorf("series %q has %d samples, want 10", name, s.Len())
		}
	}
}

func TestWakelockAffectsIdlePower(t *testing.T) {
	d := nexus5(t, typicalCorner())
	d.Step(100 * time.Millisecond)
	asleep := d.Power()
	d.AcquireWakelock()
	d.Step(100 * time.Millisecond)
	awake := d.Power()
	if awake <= asleep {
		t.Errorf("wakelock idle power %v not above suspended %v", awake, asleep)
	}
}

func TestStepValidation(t *testing.T) {
	d := nexus5(t, typicalCorner())
	if err := d.Step(0); err == nil {
		t.Error("zero step accepted")
	}
	if err := d.Run(time.Second, 0); err == nil {
		t.Error("zero run step accepted")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (int, units.Celsius) {
		d := nexus5(t, typicalCorner())
		d.StartWorkload()
		if err := d.Run(time.Minute, 100*time.Millisecond); err != nil {
			t.Fatal(err)
		}
		return d.CompletedIterations(), d.DieTemperature()
	}
	i1, t1 := run()
	i2, t2 := run()
	if i1 != i2 || t1 != t2 {
		t.Errorf("same seed diverged: (%d,%v) vs (%d,%v)", i1, t1, i2, t2)
	}
}

func TestDescribe(t *testing.T) {
	d := nexus5(t, typicalCorner())
	got := d.Describe()
	if !strings.Contains(got, "Nexus 5") || !strings.Contains(got, "bin-3") {
		t.Errorf("Describe = %q", got)
	}
}

func TestAmbientRoundTrip(t *testing.T) {
	d := nexus5(t, typicalCorner())
	d.SetAmbient(31.5)
	if d.Ambient() != 31.5 {
		t.Errorf("Ambient = %v", d.Ambient())
	}
}

func TestEnergyAccountingConsistent(t *testing.T) {
	// The source's delivered energy must equal the step-wise integral of
	// the power the device reports — no joules invented or lost.
	supply := battery.NewBenchSupply(3.8)
	d, err := New(Config{
		Name:    "n5",
		Model:   soc.Nexus5(),
		Corner:  typicalCorner(),
		Ambient: 26,
		Seed:    1,
		Source:  supply,
	})
	if err != nil {
		t.Fatal(err)
	}
	d.StartWorkload()
	var integral float64
	const dt = 100 * time.Millisecond
	for i := 0; i < 600; i++ {
		if err := d.Step(dt); err != nil {
			t.Fatal(err)
		}
		integral += float64(d.Power()) * dt.Seconds()
	}
	delivered := float64(supply.EnergyDelivered())
	if math.Abs(delivered-integral) > integral*1e-9 {
		t.Errorf("source delivered %.3f J, power integral %.3f J", delivered, integral)
	}
}

func TestDieNeverBelowAmbient(t *testing.T) {
	// There is no refrigeration inside a phone: through any activity
	// pattern the die stays at or above the ambient (tiny integrator
	// tolerance allowed).
	d := nexus5(t, typicalCorner())
	pattern := []struct {
		busy bool
		dur  time.Duration
	}{
		{true, 90 * time.Second},
		{false, 2 * time.Minute},
		{true, 30 * time.Second},
		{false, 5 * time.Minute},
	}
	for _, p := range pattern {
		if p.busy {
			d.StartWorkload()
		} else {
			d.StopWorkload()
		}
		for elapsed := time.Duration(0); elapsed < p.dur; elapsed += 100 * time.Millisecond {
			if err := d.Step(100 * time.Millisecond); err != nil {
				t.Fatal(err)
			}
			if d.DieTemperature() < d.Ambient()-0.01 {
				t.Fatalf("die %v below ambient %v", d.DieTemperature(), d.Ambient())
			}
		}
	}
}

func TestMaxFreqCapRespected(t *testing.T) {
	// A speed-binned SKU cap bounds the frequency through warmup, idle and
	// throttling alike.
	d, err := New(Config{
		Name:       "sku",
		Model:      soc.Nexus5(),
		Corner:     typicalCorner(),
		Ambient:    26,
		Seed:       3,
		MaxFreqCap: 1574,
	})
	if err != nil {
		t.Fatal(err)
	}
	d.StartWorkload()
	for i := 0; i < 1200; i++ {
		if err := d.Step(100 * time.Millisecond); err != nil {
			t.Fatal(err)
		}
		if d.BigFrequency() > 1574 {
			t.Fatalf("frequency %v exceeds the 1574 MHz SKU cap", d.BigFrequency())
		}
	}
	// The cap must actually have been the binding constraint at some point:
	// an uncapped device at this corner runs 2265 when cool.
	free := nexus5(t, typicalCorner())
	free.StartWorkload()
	free.Step(100 * time.Millisecond)
	if free.BigFrequency() != 2265 {
		t.Fatalf("uncapped device starts at %v, expected 2265", free.BigFrequency())
	}
}

func TestWorkloadProfileAffectsPowerAndThroughput(t *testing.T) {
	run := func(p workload.Profile) (units.Joules, int) {
		supply := battery.NewBenchSupply(3.8)
		d, err := New(Config{
			Name:    "n5",
			Model:   soc.Nexus5(),
			Corner:  typicalCorner(),
			Ambient: 26,
			Seed:    1,
			Source:  supply,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := d.SetWorkloadProfile(p); err != nil {
			t.Fatal(err)
		}
		d.SetGovernor(governor.Userspace{Freq: 960})
		d.StartWorkload()
		if err := d.Run(3*time.Minute, 100*time.Millisecond); err != nil {
			t.Fatal(err)
		}
		return supply.EnergyDelivered(), d.CompletedIterations()
	}
	cpuE, cpuIters := run(workload.PiCPUBound())
	memE, memIters := run(workload.MemoryBound())
	// At the same pinned frequency, memory-bound work burns less power and
	// completes fewer iterations — the paper's CPU-bound choice maximizes
	// both the stress and the work per joule of stress.
	if memE >= cpuE {
		t.Errorf("memory-bound energy %v not below CPU-bound %v", memE, cpuE)
	}
	if memIters >= cpuIters {
		t.Errorf("memory-bound iterations %d not below CPU-bound %d", memIters, cpuIters)
	}
}

func TestSetWorkloadProfileValidation(t *testing.T) {
	d := nexus5(t, typicalCorner())
	if err := d.SetWorkloadProfile(workload.Profile{Name: "bad", PowerFactor: 2, CycleFactor: 1}); err == nil {
		t.Error("invalid profile accepted")
	}
	if d.WorkloadProfile().Name != "pi-cpu-bound" {
		t.Errorf("default profile = %q", d.WorkloadProfile().Name)
	}
}
