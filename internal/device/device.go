// Package device assembles a complete simulated handset: a specific chip
// (process corner) of a specific model (SoC + thermal body + policies),
// powered by a battery or a Monsoon channel, advancing on simulated time.
//
// Device.Step is the simulation's inner loop. Each step the device:
//
//  1. reads its die temperature sensor (with noise, like a real tsens),
//  2. lets the thermal engine adjust its frequency cap / core hotplug,
//  3. resolves effective per-cluster frequencies and rail voltages,
//  4. evaluates CPU power and injects it into the RC thermal body,
//  5. advances the π-workload counters on every online core,
//  6. drains the power source and records the trace.
//
// Nothing here knows which experiment is running; ACCUBENCH drives devices
// purely through this public surface, the way the paper's app drives real
// phones through Android intents.
package device

import (
	"fmt"
	"math"
	"time"

	"accubench/internal/battery"
	"accubench/internal/governor"
	"accubench/internal/power"
	"accubench/internal/silicon"
	"accubench/internal/sim"
	"accubench/internal/soc"
	"accubench/internal/thermal"
	"accubench/internal/trace"
	"accubench/internal/units"
	"accubench/internal/workload"
)

// Device is one physical handset under test.
type Device struct {
	name   string
	model  *soc.DeviceModel
	corner silicon.ProcessCorner

	network *thermal.Network
	dieIdx  int
	caseIdx int

	engine *governor.Engine
	gov    governor.Governor

	pm power.Model

	bigCounters    *workload.Group
	littleCounters *workload.Group

	source battery.Source

	sensorNoise sim.Noise
	utilNoise   sim.Noise

	elapsed    time.Duration
	busy       bool
	wakelock   bool
	lastPower  units.Watts
	lastBigF   units.MegaHertz
	maxFreqCap units.MegaHertz

	// utilLevel is the slowly varying background-activity level: residual
	// OS work persists for seconds at a time, so the level is resampled on
	// a coarse cadence rather than per step. This is what gives back-to-
	// back iterations their small score differences.
	utilLevel    float64
	utilLevelEnd time.Duration

	profile workload.Profile

	rec *trace.Recorder

	// Step scratch and caches. Step runs ten times per simulated second for
	// every device in a fleet, so its per-step garbage and repeated lookups
	// are hoisted here: the core-state slices are reused across steps, the
	// trace series handles are resolved once in New (in the same creation
	// order Step used to create them lazily, so CSV column order is
	// unchanged), and the rail-voltage resolution is memoized per cluster.
	bigStates    []power.CoreState
	littleStates []power.CoreState

	sDie, sCase, sFreqBig, sFreqLittle, sPower, sCores *trace.Series

	// voltTempInvariant is true when the model's voltage scheme declares it
	// ignores die temperature (static tables); the memo key then collapses
	// the temperature dimension. Temperature-sensitive schemes (RBCPR) keep
	// the exact float64 temperature in the key — never a quantized one, which
	// would change which voltage a given step sees and break bit-identity
	// with the unmemoized path.
	voltTempInvariant bool
	bigVMemo          voltMemo
	littleVMemo       voltMemo
}

// voltMemo is a single-entry memo of VoltageScheme.Voltage for one cluster.
// One entry suffices: within a thermal plateau the (frequency, temperature)
// operating point repeats for many consecutive steps, and the memoized
// value is exactly the value the scheme would return (same pure function,
// same arguments), so memoization cannot perturb the simulation.
type voltMemo struct {
	valid bool
	freq  units.MegaHertz
	temp  units.Celsius
	volts units.Volts
}

// tempInvariant is implemented by voltage schemes whose output does not
// depend on die temperature (soc.StaticTable).
type tempInvariant interface{ TempInvariant() bool }

// Config bundles what varies between devices of the same model.
type Config struct {
	// Name identifies the unit, e.g. "device-363" (the paper's naming).
	Name string
	// Model is the handset product.
	Model *soc.DeviceModel
	// Corner is this unit's silicon lottery outcome.
	Corner silicon.ProcessCorner
	// Ambient is the initial environment temperature; the device starts in
	// thermal equilibrium with it.
	Ambient units.Celsius
	// Seed drives the device's private noise streams.
	Seed int64
	// Source powers the device; nil defaults to the model's stock battery.
	Source battery.Source
	// MaxFreqCap, when non-zero, bounds the big cluster below the model's
	// ladder top — a per-unit SKU cap, as speed-binned products ship
	// (silicon.SpeedBinner assigns these).
	MaxFreqCap units.MegaHertz
	// SensorNoise and UtilNoise, when non-nil, replace the noise streams
	// New derives from Seed. This is the seam the fleetsim bit-identity
	// goldens use: a Device and its batched counterpart are handed the
	// same streams and must then produce byte-identical traces.
	SensorNoise sim.Noise
	UtilNoise   sim.Noise
}

// Behavioral constants of Step, exported so internal/fleetsim's batched
// stepper reproduces Step bit for bit from one set of definitions.
const (
	// IdleUtil is the background utilization of an idle online core.
	IdleUtil = 0.02
	// UtilSigma is the standard deviation of the slowly varying
	// background-activity level's Gaussian draw.
	UtilSigma = 0.012
	// UtilResample is how long one background-activity level persists.
	UtilResample = 15 * time.Second
	// AwakeFloor is the non-CPU platform draw while awake (wakelock held
	// or workload running), screen off.
	AwakeFloor units.Watts = 0.25
	// SuspendedFloor is the non-CPU platform draw while suspended.
	SuspendedFloor units.Watts = 0.03
)

// QuantizeSensor rounds a raw sensor value to the 0.1 °C resolution the
// sysfs thermal zone reports (the quantization step of ReadTempSensor).
func QuantizeSensor(raw float64) units.Celsius {
	return units.Celsius(math.Round(raw*10) / 10)
}

// New builds a device. It validates the model and corner.
func New(cfg Config) (*Device, error) {
	if cfg.Name == "" {
		return nil, fmt.Errorf("device: unnamed device")
	}
	if cfg.Model == nil {
		return nil, fmt.Errorf("device: %s has no model", cfg.Name)
	}
	if err := cfg.Model.Validate(); err != nil {
		return nil, fmt.Errorf("device: %s: %w", cfg.Name, err)
	}
	if err := cfg.Corner.Validate(); err != nil {
		return nil, fmt.Errorf("device: %s: %w", cfg.Name, err)
	}
	if int(cfg.Corner.Bin) >= cfg.Model.SoC.Bins {
		return nil, fmt.Errorf("device: %s: bin %d outside %s's %d bins",
			cfg.Name, cfg.Corner.Bin, cfg.Model.SoC.Name, cfg.Model.SoC.Bins)
	}
	nw, die, cs, err := cfg.Model.Body.Build(cfg.Ambient)
	if err != nil {
		return nil, fmt.Errorf("device: %s: %w", cfg.Name, err)
	}
	src := cfg.Source
	if src == nil {
		b := cfg.Model.Battery
		src = battery.NewBattery(b.Capacity, b.Nominal, b.InternalOhms)
	}
	d := &Device{
		name:    cfg.Name,
		model:   cfg.Model,
		corner:  cfg.Corner,
		network: nw,
		dieIdx:  die,
		caseIdx: cs,
		engine:  governor.NewEngine(cfg.Model.Thermal, cfg.Model.SoC.Big, 0),
		gov:     governor.Performance{},
		pm: power.Model{
			CeffBig: cfg.Model.SoC.Big.Ceff,
			Leakage: cfg.Model.SoC.Leakage,
			Uncore:  cfg.Model.SoC.Uncore,
		},
		bigCounters: workload.NewGroup(cfg.Model.SoC.Big.Cores, cfg.Model.SoC.Big.CyclesPerIteration),
		source:      src,
		sensorNoise: cfg.SensorNoise,
		utilNoise:   cfg.UtilNoise,
		rec:         trace.NewRecorder(),
		lastBigF:    cfg.Model.SoC.Big.OPPs[0],
		maxFreqCap:  cfg.MaxFreqCap,
		profile:     workload.PiCPUBound(),
	}
	if d.sensorNoise == nil {
		d.sensorNoise = sim.NewSource(cfg.Seed, "sensor:"+cfg.Name)
	}
	if d.utilNoise == nil {
		d.utilNoise = sim.NewSource(cfg.Seed, "util:"+cfg.Name)
	}
	if l := cfg.Model.SoC.Little; l != nil {
		d.pm.CeffLittle = l.Ceff
		d.littleCounters = workload.NewGroup(l.Cores, l.CyclesPerIteration)
	}
	d.bigStates = make([]power.CoreState, cfg.Model.SoC.Big.Cores)
	// Series handles, created in the exact order Step appends so the CSV
	// column order is identical to the historical lazy creation.
	d.sDie = d.rec.Series("die", "C")
	d.sCase = d.rec.Series("case", "C")
	d.sFreqBig = d.rec.Series("freq.big", "MHz")
	if l := cfg.Model.SoC.Little; l != nil {
		d.littleStates = make([]power.CoreState, l.Cores)
		d.sFreqLittle = d.rec.Series("freq.little", "MHz")
	}
	d.sPower = d.rec.Series("power", "W")
	d.sCores = d.rec.Series("cores.online", "n")
	if ti, ok := cfg.Model.SoC.Voltages.(tempInvariant); ok && ti.TempInvariant() {
		d.voltTempInvariant = true
	}
	return d, nil
}

// railVoltage resolves the rail voltage for one cluster through the
// per-cluster memo. The returned voltage is bit-identical to calling the
// scheme directly: on a miss the scheme is invoked with the unmodified
// arguments, and a hit only ever returns a value the scheme itself
// produced for the same (frequency, temperature) pair — temperature
// compared on exact float64 bits unless the scheme declares itself
// temperature-invariant.
func (d *Device) railVoltage(m *voltMemo, f units.MegaHertz, die units.Celsius) (units.Volts, error) {
	key := die
	if d.voltTempInvariant {
		key = 0
	}
	if m.valid && m.freq == f && m.temp == key {
		return m.volts, nil
	}
	v, err := d.model.SoC.Voltages.Voltage(d.corner, f, die)
	if err != nil {
		return 0, err
	}
	*m = voltMemo{valid: true, freq: f, temp: key, volts: v}
	return v, nil
}

// Name returns the unit name, e.g. "device-363".
func (d *Device) Name() string { return d.name }

// Model returns the handset product description.
func (d *Device) Model() *soc.DeviceModel { return d.model }

// Corner returns the unit's process corner.
func (d *Device) Corner() silicon.ProcessCorner { return d.corner }

// Describe renders e.g. "device-363 (Nexus 6P, bin-0 leak×1.32)".
func (d *Device) Describe() string {
	return fmt.Sprintf("%s (%s, %s)", d.name, d.model.Name, d.corner)
}

// SetGovernor selects the DVFS governor — Performance for UNCONSTRAINED,
// Userspace for FIXED-FREQUENCY.
func (d *Device) SetGovernor(g governor.Governor) { d.gov = g }

// Governor returns the active governor.
func (d *Device) Governor() governor.Governor { return d.gov }

// PowerBy swaps the power source (the paper replaces the battery with the
// Monsoon's main channel).
func (d *Device) PowerBy(src battery.Source) { d.source = src }

// Source returns the active power source.
func (d *Device) Source() battery.Source { return d.source }

// AcquireWakelock keeps the device from sleeping (the app holds one through
// warmup and workload).
func (d *Device) AcquireWakelock() { d.wakelock = true }

// ReleaseWakelock lets the device sleep; during ACCUBENCH's cooldown the
// device "enters into a sleep state and wakes up momentarily every 5
// seconds to poll the temperature sensor".
func (d *Device) ReleaseWakelock() { d.wakelock = false }

// HoldsWakelock reports the wakelock state.
func (d *Device) HoldsWakelock() bool { return d.wakelock }

// StartWorkload puts the π loop on all online cores.
func (d *Device) StartWorkload() { d.busy = true }

// SetWorkloadProfile selects the workload's microarchitectural shape
// (default: the paper's CPU-bound π loop). Invalid profiles are rejected.
func (d *Device) SetWorkloadProfile(p workload.Profile) error {
	if err := p.Validate(); err != nil {
		return err
	}
	d.profile = p
	return nil
}

// WorkloadProfile returns the active profile.
func (d *Device) WorkloadProfile() workload.Profile { return d.profile }

// StopWorkload idles the CPU.
func (d *Device) StopWorkload() { d.busy = false }

// Busy reports whether the workload is running.
func (d *Device) Busy() bool { return d.busy }

// Counters returns the big-cluster workload counters.
func (d *Device) Counters() *workload.Group { return d.bigCounters }

// LittleCounters returns the LITTLE-cluster counters, or nil on homogeneous
// quads.
func (d *Device) LittleCounters() *workload.Group { return d.littleCounters }

// CompletedIterations sums the workload score across every core, the
// paper's performance metric.
func (d *Device) CompletedIterations() int {
	n := d.bigCounters.Completed()
	if d.littleCounters != nil {
		n += d.littleCounters.Completed()
	}
	return n
}

// ResetCounters zeroes the workload score at a phase boundary.
func (d *Device) ResetCounters() {
	d.bigCounters.Reset()
	if d.littleCounters != nil {
		d.littleCounters.Reset()
	}
}

// DieTemperature returns the true die temperature (the physical quantity;
// experiments should normally use ReadTempSensor, which is what the app
// can see).
func (d *Device) DieTemperature() units.Celsius {
	t, err := d.network.Temperature(d.dieIdx)
	if err != nil {
		panic(err) // index built in New; cannot be invalid
	}
	return t
}

// CaseTemperature returns the body/skin temperature.
func (d *Device) CaseTemperature() units.Celsius {
	t, err := d.network.Temperature(d.caseIdx)
	if err != nil {
		panic(err)
	}
	return t
}

// ReadTempSensor models the on-die tsens: the true temperature plus
// Gaussian noise, quantized to 0.1 °C steps like the sysfs thermal zone.
func (d *Device) ReadTempSensor() units.Celsius {
	raw := float64(d.DieTemperature()) + d.sensorNoise.Normal(0, d.model.SensorNoise)
	return QuantizeSensor(raw)
}

// SetAmbient updates the environment temperature around the device (driven
// by the THERMABOX each step).
func (d *Device) SetAmbient(t units.Celsius) { d.network.SetAmbient(t) }

// Ambient returns the current environment temperature.
func (d *Device) Ambient() units.Celsius { return d.network.Ambient() }

// Power returns the most recent total power draw (what the Monsoon samples).
func (d *Device) Power() units.Watts { return d.lastPower }

// BigFrequency returns the big cluster's current effective frequency.
func (d *Device) BigFrequency() units.MegaHertz { return d.lastBigF }

// OnlineBigCores returns how many big cores are currently online.
func (d *Device) OnlineBigCores() int {
	return d.model.SoC.Big.Cores - d.engine.OfflineBigCores()
}

// ThrottleEvents returns the thermal engine's cumulative step-down count.
func (d *Device) ThrottleEvents() int { return d.engine.ThrottleEvents() }

// Elapsed returns the device's simulated uptime.
func (d *Device) Elapsed() time.Duration { return d.elapsed }

// Trace returns the device's recorder. Series: "die" (°C), "case" (°C),
// "freq.big" (MHz), "freq.little" (MHz, big.LITTLE only), "power" (W),
// "cores.online".
func (d *Device) Trace() *trace.Recorder { return d.rec }

// idleFloor is the non-CPU platform draw: a locked, radios-off phone (the
// paper disables Bluetooth, radio, location and keeps the display off).
func (d *Device) idleFloor() units.Watts {
	if d.wakelock || d.busy {
		return AwakeFloor
	}
	return SuspendedFloor
}

// Step advances the device by dt. Call it with the control-loop step (100 ms
// in the harness); the thermal network subdivides internally as needed.
func (d *Device) Step(dt time.Duration) error {
	if dt <= 0 {
		return fmt.Errorf("device: non-positive step %v", dt)
	}
	d.elapsed += dt
	s := d.model.SoC

	// 1. Thermal engine sees the *sensor* temperature, not the truth —
	// sensor noise is one of the reasons back-to-back iterations differ.
	d.engine.Poll(d.elapsed, d.ReadTempSensor())

	// 2. Resolve caps and effective frequencies.
	die := d.DieTemperature()
	supplyV := d.source.Voltage(d.lastPower)
	vCap := governor.VoltageCap(d.model.VoltageThrottle, supplyV, s.Big)
	if d.maxFreqCap > 0 && d.maxFreqCap < vCap {
		vCap = d.maxFreqCap
	}
	bigF := governor.Effective(d.gov, s.Big, d.engine.Cap(), vCap)
	if !d.busy {
		bigF = s.Big.OPPs[0] // idle at the floor OPP
	}
	var littleF units.MegaHertz
	if s.Little != nil {
		littleF = governor.Effective(d.gov, *s.Little, d.engine.Cap(), vCap)
		if !d.busy {
			littleF = s.Little.OPPs[0]
		}
	}

	// 3. Rail voltages for the current operating point (memoized — see
	// railVoltage for why this cannot change the resolved voltage).
	bigV, err := d.railVoltage(&d.bigVMemo, bigF, die)
	if err != nil {
		return fmt.Errorf("device: %s: %w", d.name, err)
	}
	var littleV units.Volts
	if s.Little != nil {
		littleV, err = d.railVoltage(&d.littleVMemo, littleF, die)
		if err != nil {
			return fmt.Errorf("device: %s: %w", d.name, err)
		}
	}

	// 4. Core states. The π workload saturates every online core; idle
	// cores tick along at ~2% utilization. Small utilization jitter stands
	// in for the residual OS activity the paper could not fully remove.
	if d.elapsed >= d.utilLevelEnd {
		d.utilLevel = 1 - math.Abs(d.utilNoise.Normal(0, UtilSigma))
		d.utilLevelEnd = d.elapsed + UtilResample
	}
	util := IdleUtil
	if d.busy {
		util = d.utilLevel * d.profile.PowerFactor
	}
	offline := d.engine.OfflineBigCores()
	bigStates := d.bigStates // reused scratch; every element is overwritten below
	for i := range bigStates {
		online := i >= offline
		// cpuidle: an idle device power-collapses all but one core, which
		// is what lets a leaky chip actually cool during ACCUBENCH's
		// cooldown — collapsed cores leak nothing.
		if !d.busy && i != s.Big.Cores-1 {
			online = false
		}
		bigStates[i] = power.CoreState{
			Online:      online,
			Freq:        bigF,
			Voltage:     bigV,
			Utilization: util,
		}
	}
	littleStates := d.littleStates // nil on homogeneous quads
	if s.Little != nil {
		for i := range littleStates {
			littleStates[i] = power.CoreState{Online: d.busy, Freq: littleF, Voltage: littleV, Utilization: util}
		}
	}

	// 5. Power and heat.
	bd := d.pm.Evaluate(bigStates, littleStates, d.corner, die)
	total := bd.Total() + d.idleFloor()
	if err := d.network.Inject(d.dieIdx, total); err != nil {
		return err
	}
	d.network.Step(dt)

	// 6. Workload progress on online cores. Progress scales with effective
	// utilization: the residual OS activity that steals cycles also steals
	// iterations, which is where the paper's per-device iteration noise
	// comes from.
	if d.busy {
		// The OS-noise level (not the profile's stall share) steals
		// iterations; stalls are already priced into CycleFactor.
		effBig := units.MegaHertz(float64(bigF) * d.utilLevel / d.profile.CycleFactor)
		for i := offline; i < s.Big.Cores; i++ {
			d.bigCounters.Counter(i).Advance(effBig, dt)
		}
		if s.Little != nil {
			effLittle := units.MegaHertz(float64(littleF) * d.utilLevel / d.profile.CycleFactor)
			for i := 0; i < s.Little.Cores; i++ {
				d.littleCounters.Counter(i).Advance(effLittle, dt)
			}
		}
	}

	// 7. Source accounting and traces.
	d.source.Drain(total.Over(dt))
	d.lastPower = total
	d.lastBigF = bigF
	d.sDie.Append(d.elapsed, float64(die))
	d.sCase.Append(d.elapsed, float64(d.CaseTemperature()))
	d.sFreqBig.Append(d.elapsed, float64(bigF))
	if s.Little != nil {
		d.sFreqLittle.Append(d.elapsed, float64(littleF))
	}
	d.sPower.Append(d.elapsed, float64(total))
	d.sCores.Append(d.elapsed, float64(d.OnlineBigCores()))
	return nil
}

// Run advances the device for a total duration in fixed steps.
func (d *Device) Run(total, step time.Duration) error {
	if step <= 0 {
		return fmt.Errorf("device: non-positive step %v", step)
	}
	for remaining := total; remaining > 0; remaining -= step {
		h := step
		if remaining < h {
			h = remaining
		}
		if err := d.Step(h); err != nil {
			return err
		}
	}
	return nil
}
