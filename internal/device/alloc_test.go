// Allocation-regression pins for the device inner loop. This lives in an
// external test package because it imports testkit (for the -race guard),
// and testkit transitively imports device.
package device_test

import (
	"testing"
	"time"

	"accubench/internal/device"
	"accubench/internal/silicon"
	"accubench/internal/soc"
	"accubench/internal/testkit"
)

func steadyDevice(t *testing.T, modelName string) *device.Device {
	t.Helper()
	model, err := soc.ModelByName(modelName)
	if err != nil {
		t.Fatal(err)
	}
	d, err := device.New(device.Config{
		Name:    "alloc-" + modelName,
		Model:   model,
		Corner:  silicon.ProcessCorner{Bin: 0, Leakage: 1.1},
		Ambient: 26,
		Seed:    42,
	})
	if err != nil {
		t.Fatal(err)
	}
	d.AcquireWakelock()
	d.StartWorkload()
	// Warm-up: seals the thermal network, fills the voltage memo, and
	// grows the trace series past their first chunk so steady state is
	// what AllocsPerRun sees.
	if err := d.Run(5*time.Second, 100*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	return d
}

// TestDeviceStepZeroAllocs pins Device.Step at exactly zero steady-state
// allocations per step: the thermal scratch, the core-state slices, the
// trace series handles and the voltage memo together must leave nothing
// for the garbage collector. Trace storage growth is amortized over 1024+
// appends, which AllocsPerRun's integer averaging absorbs.
func TestDeviceStepZeroAllocs(t *testing.T) {
	if testkit.RaceEnabled {
		t.Skip("race runtime instruments allocations; exact-zero assertion only holds without -race")
	}
	for _, modelName := range []string{"Nexus 5", "Google Pixel"} {
		t.Run(modelName, func(t *testing.T) {
			d := steadyDevice(t, modelName)
			allocs := testing.AllocsPerRun(200, func() {
				if err := d.Step(100 * time.Millisecond); err != nil {
					t.Fatal(err)
				}
			})
			if allocs != 0 {
				t.Errorf("%s: Device.Step allocates %v objects per step, want 0", modelName, allocs)
			}
		})
	}
}
