package app

import (
	"encoding/json"
	"strings"
	"testing"

	"accubench/internal/device"
	"accubench/internal/monsoon"
	"accubench/internal/silicon"
	"accubench/internal/soc"
)

func quickDef(version int) BenchmarkDef {
	return BenchmarkDef{
		Version:         version,
		Mode:            "unconstrained",
		WarmupSec:       30,
		WorkloadSec:     60,
		CooldownTargetC: 40,
		Iterations:      2,
	}
}

func install(t *testing.T, backend *Backend) *App {
	t.Helper()
	mon := monsoon.New(3.8)
	dev, err := device.New(device.Config{
		Name:    "app-dut",
		Model:   soc.Nexus5(),
		Corner:  silicon.ProcessCorner{Bin: 2, Leakage: 1.3},
		Ambient: 26,
		Seed:    5,
		Source:  mon.Supply(),
	})
	if err != nil {
		t.Fatal(err)
	}
	a, err := Install(dev, mon, nil, backend)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestDefValidate(t *testing.T) {
	if err := DefaultDef().Validate(); err != nil {
		t.Fatalf("paper default rejected: %v", err)
	}
	muts := []func(*BenchmarkDef){
		func(d *BenchmarkDef) { d.Version = 0 },
		func(d *BenchmarkDef) { d.Mode = "turbo" },
		func(d *BenchmarkDef) { d.WarmupSec = 0 },
		func(d *BenchmarkDef) { d.WorkloadSec = -1 },
		func(d *BenchmarkDef) { d.Iterations = 0 },
	}
	for i, mut := range muts {
		d := DefaultDef()
		mut(&d)
		if err := d.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestDefJSONRoundTrip(t *testing.T) {
	d := DefaultDef()
	raw, err := json.Marshal(d)
	if err != nil {
		t.Fatal(err)
	}
	var back BenchmarkDef
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back != d {
		t.Errorf("round trip changed the definition: %+v vs %+v", back, d)
	}
}

func TestBackendPublishRules(t *testing.T) {
	b, err := NewBackend(quickDef(1))
	if err != nil {
		t.Fatal(err)
	}
	// Same or lower version rejected.
	if err := b.Publish(quickDef(1)); err == nil {
		t.Error("same version accepted")
	}
	// Invalid definition rejected, old one keeps serving.
	bad := quickDef(5)
	bad.Mode = "nope"
	if err := b.Publish(bad); err == nil {
		t.Error("invalid definition accepted")
	}
	raw, err := b.Fetch()
	if err != nil {
		t.Fatal(err)
	}
	var served BenchmarkDef
	if err := json.Unmarshal(raw, &served); err != nil {
		t.Fatal(err)
	}
	if served.Version != 1 {
		t.Errorf("served version %d after rejected publishes, want 1", served.Version)
	}
	// Proper upgrade accepted.
	if err := b.Publish(quickDef(2)); err != nil {
		t.Fatal(err)
	}
}

func TestNewBackendRejectsInvalid(t *testing.T) {
	if _, err := NewBackend(BenchmarkDef{}); err == nil {
		t.Error("zero definition accepted")
	}
}

func TestInstallValidation(t *testing.T) {
	if _, err := Install(nil, nil, nil, nil); err == nil {
		t.Error("empty install accepted")
	}
}

func TestRunIntentEndToEnd(t *testing.T) {
	backend, err := NewBackend(quickDef(1))
	if err != nil {
		t.Fatal(err)
	}
	a := install(t, backend)
	raw, err := a.HandleIntent(Intent{Action: ActionRun})
	if err != nil {
		t.Fatal(err)
	}
	var lg RunLog
	if err := json.Unmarshal(raw, &lg); err != nil {
		t.Fatal(err)
	}
	if lg.Device != "app-dut" || lg.Model != "Nexus 5" {
		t.Errorf("log identity: %+v", lg)
	}
	if lg.DefVersion != 1 {
		t.Errorf("log DefVersion = %d", lg.DefVersion)
	}
	if len(lg.Scores) != 2 || lg.Scores[0] <= 0 {
		t.Errorf("log scores = %v", lg.Scores)
	}
	if len(lg.EnergiesJ) != 2 || lg.EnergiesJ[0] <= 0 {
		t.Errorf("log energies = %v", lg.EnergiesJ)
	}
	// The backend collected the same log.
	logs := backend.Logs()
	if len(logs) != 1 || logs[0].Device != "app-dut" {
		t.Errorf("backend logs = %+v", logs)
	}
}

func TestBackendUpdatePropagatesWithoutReinstall(t *testing.T) {
	// The paper's headline app feature: the backend updates the benchmark,
	// the device picks it up on the next intent, no USB required.
	backend, err := NewBackend(quickDef(1))
	if err != nil {
		t.Fatal(err)
	}
	a := install(t, backend)
	if _, err := a.HandleIntent(Intent{Action: ActionRun}); err != nil {
		t.Fatal(err)
	}
	v2 := quickDef(2)
	v2.Mode = "fixed"
	v2.Iterations = 1
	if err := backend.Publish(v2); err != nil {
		t.Fatal(err)
	}
	raw, err := a.HandleIntent(Intent{Action: ActionRun})
	if err != nil {
		t.Fatal(err)
	}
	var lg RunLog
	if err := json.Unmarshal(raw, &lg); err != nil {
		t.Fatal(err)
	}
	if lg.DefVersion != 2 || lg.Mode != "fixed" || len(lg.Scores) != 1 {
		t.Errorf("second run did not pick up v2: %+v", lg)
	}
	if len(backend.Logs()) != 2 {
		t.Errorf("backend logs = %d, want 2", len(backend.Logs()))
	}
}

func TestModeExtraOverridesDefinition(t *testing.T) {
	backend, err := NewBackend(quickDef(1))
	if err != nil {
		t.Fatal(err)
	}
	a := install(t, backend)
	raw, err := a.HandleIntent(Intent{Action: ActionRun, Extras: map[string]string{"mode": "fixed"}})
	if err != nil {
		t.Fatal(err)
	}
	var lg RunLog
	if err := json.Unmarshal(raw, &lg); err != nil {
		t.Fatal(err)
	}
	if lg.Mode != "fixed" {
		t.Errorf("mode = %q, want intent override", lg.Mode)
	}
	// A bogus override is rejected, not executed.
	if _, err := a.HandleIntent(Intent{Action: ActionRun, Extras: map[string]string{"mode": "ludicrous"}}); err == nil {
		t.Error("bogus mode override accepted")
	}
}

func TestStatusIntent(t *testing.T) {
	backend, err := NewBackend(quickDef(1))
	if err != nil {
		t.Fatal(err)
	}
	a := install(t, backend)
	raw, err := a.HandleIntent(Intent{Action: ActionStatus})
	if err != nil {
		t.Fatal(err)
	}
	var rep StatusReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Device != "app-dut" || rep.Model != "Nexus 5" {
		t.Errorf("status identity: %+v", rep)
	}
	if rep.Busy || rep.HoldsWake {
		t.Errorf("fresh device busy in status: %+v", rep)
	}
	if rep.DieTempC < 20 || rep.DieTempC > 32 {
		t.Errorf("status die temp %v implausible for idle 26°C", rep.DieTempC)
	}
	if rep.OnlineCores != 4 {
		t.Errorf("online cores = %d", rep.OnlineCores)
	}
}

func TestUnknownIntent(t *testing.T) {
	backend, err := NewBackend(quickDef(1))
	if err != nil {
		t.Fatal(err)
	}
	a := install(t, backend)
	if _, err := a.HandleIntent(Intent{Action: "accubench.intent.DANCE"}); err == nil {
		t.Error("unknown intent accepted")
	} else if !strings.Contains(err.Error(), "DANCE") {
		t.Errorf("error %v should name the action", err)
	}
}

func TestUploadValidation(t *testing.T) {
	backend, err := NewBackend(quickDef(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := backend.Upload([]byte("{not json")); err == nil {
		t.Error("malformed log accepted")
	}
	if err := backend.Upload([]byte(`{"device":"","scores":[]}`)); err == nil {
		t.Error("incomplete log accepted")
	}
}
