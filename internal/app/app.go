// Package app models the paper's benchmarking application and its backend
// (§III): "The entire technique is packaged into an app that could be
// invoked via an Android intent. … The benefit of writing the app in
// JavaScript is that the app can be easily updated by the backend without
// requiring the device to be connected via USB. With this approach, the
// latest JavaScript code is pulled as part of the web page and executed
// every time the benchmark is invoked."
//
// The simulation keeps the same moving parts — intents trigger runs, the
// app pulls a versioned benchmark definition from the backend before every
// invocation, and results are uploaded as structured logs — without a real
// network: Backend is an in-process service with the same contract.
package app

import (
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"accubench/internal/accubench"
	"accubench/internal/device"
	"accubench/internal/monsoon"
	"accubench/internal/thermabox"
	"accubench/internal/units"
)

// Intent mirrors an Android intent: an action string plus string extras.
type Intent struct {
	// Action selects the behaviour: ActionRun or ActionStatus.
	Action string
	// Extras carries optional parameters (e.g. "mode": "fixed").
	Extras map[string]string
}

// Intent actions the app responds to.
const (
	// ActionRun triggers a full ACCUBENCH invocation.
	ActionRun = "accubench.intent.RUN"
	// ActionStatus reports app and device state without running anything.
	ActionStatus = "accubench.intent.STATUS"
)

// BenchmarkDef is the backend-served benchmark definition — the stand-in
// for the JavaScript payload the paper's app pulls on every invocation.
// It is JSON so a real backend could serve it unchanged.
type BenchmarkDef struct {
	// Version identifies the payload; the app logs which version each run
	// used, so the backend can discard results from stale definitions.
	Version int `json:"version"`
	// Mode is "unconstrained" or "fixed".
	Mode string `json:"mode"`
	// WarmupSec, WorkloadSec are the phase lengths in seconds.
	WarmupSec   int `json:"warmup_sec"`
	WorkloadSec int `json:"workload_sec"`
	// CooldownTargetC is the absolute cooldown target; zero selects the
	// flatness criterion (the in-the-wild mode).
	CooldownTargetC float64 `json:"cooldown_target_c,omitempty"`
	// Iterations is the back-to-back run count.
	Iterations int `json:"iterations"`
}

// Validate checks the definition before the app will execute it — a
// malformed backend payload must not brick the fleet.
func (d BenchmarkDef) Validate() error {
	if d.Version <= 0 {
		return fmt.Errorf("app: definition version %d", d.Version)
	}
	if d.Mode != "unconstrained" && d.Mode != "fixed" {
		return fmt.Errorf("app: unknown mode %q", d.Mode)
	}
	if d.WarmupSec <= 0 || d.WorkloadSec <= 0 {
		return fmt.Errorf("app: non-positive phase lengths (%d, %d)", d.WarmupSec, d.WorkloadSec)
	}
	if d.Iterations <= 0 {
		return fmt.Errorf("app: %d iterations", d.Iterations)
	}
	return nil
}

// config converts the definition into an ACCUBENCH configuration.
func (d BenchmarkDef) config() accubench.Config {
	mode := accubench.Unconstrained
	if d.Mode == "fixed" {
		mode = accubench.FixedFrequency
	}
	cfg := accubench.DefaultConfig(mode)
	cfg.Warmup = time.Duration(d.WarmupSec) * time.Second
	cfg.Workload = time.Duration(d.WorkloadSec) * time.Second
	cfg.Iterations = d.Iterations
	if d.CooldownTargetC > 0 {
		cfg.CooldownTarget = units.Celsius(d.CooldownTargetC)
	} else {
		cfg.CooldownStableWindow = 10
		cfg.CooldownStableBand = 1.3
	}
	return cfg
}

// RunLog is the structured record the app uploads after a run.
type RunLog struct {
	Device        string    `json:"device"`
	Model         string    `json:"model"`
	DefVersion    int       `json:"def_version"`
	Mode          string    `json:"mode"`
	Scores        []int     `json:"scores"`
	EnergiesJ     []float64 `json:"energies_j"`
	MeanFreqMHz   []float64 `json:"mean_freq_mhz"`
	CooldownSecs  []float64 `json:"cooldown_secs"`
	PeakDieTempsC []float64 `json:"peak_die_temps_c"`
}

// Backend is the paper's server side: it serves the latest benchmark
// definition and collects run logs. Safe for concurrent use — a fleet of
// devices reports in.
type Backend struct {
	mu   sync.Mutex
	def  BenchmarkDef
	logs []RunLog
}

// NewBackend starts a backend serving the given initial definition.
func NewBackend(def BenchmarkDef) (*Backend, error) {
	if err := def.Validate(); err != nil {
		return nil, err
	}
	return &Backend{def: def}, nil
}

// DefaultDef returns the paper's published benchmark: 3-minute warmup,
// 5-minute workload, 5 iterations, UNCONSTRAINED.
func DefaultDef() BenchmarkDef {
	return BenchmarkDef{
		Version:         1,
		Mode:            "unconstrained",
		WarmupSec:       180,
		WorkloadSec:     300,
		CooldownTargetC: 36,
		Iterations:      5,
	}
}

// Publish replaces the served definition — the "update the app from the
// backend" mechanism. Invalid definitions are rejected and the previous one
// keeps serving.
func (b *Backend) Publish(def BenchmarkDef) error {
	if err := def.Validate(); err != nil {
		return err
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if def.Version <= b.def.Version {
		return fmt.Errorf("app: version %d does not supersede %d", def.Version, b.def.Version)
	}
	b.def = def
	return nil
}

// Fetch returns the current definition as the JSON payload a device pulls.
func (b *Backend) Fetch() ([]byte, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return json.Marshal(b.def)
}

// Upload stores a run log.
func (b *Backend) Upload(raw []byte) error {
	var lg RunLog
	if err := json.Unmarshal(raw, &lg); err != nil {
		return fmt.Errorf("app: malformed log: %w", err)
	}
	if lg.Device == "" || len(lg.Scores) == 0 {
		return fmt.Errorf("app: incomplete log from %q", lg.Device)
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.logs = append(b.logs, lg)
	return nil
}

// Logs returns a copy of the collected logs.
func (b *Backend) Logs() []RunLog {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]RunLog(nil), b.logs...)
}

// App is the on-device benchmark application.
type App struct {
	dev     *device.Device
	mon     *monsoon.Monitor
	box     *thermabox.Box
	backend *Backend
}

// Install puts the app on a device. The Monsoon is required (it is how the
// app's lab deployments measure energy); the chamber is optional — nil for
// in-the-wild devices.
func Install(dev *device.Device, mon *monsoon.Monitor, box *thermabox.Box, backend *Backend) (*App, error) {
	if dev == nil || mon == nil || backend == nil {
		return nil, fmt.Errorf("app: install needs a device, a monitor and a backend")
	}
	return &App{dev: dev, mon: mon, box: box, backend: backend}, nil
}

// StatusReport is the answer to ActionStatus.
type StatusReport struct {
	Device      string  `json:"device"`
	Model       string  `json:"model"`
	DieTempC    float64 `json:"die_temp_c"`
	Busy        bool    `json:"busy"`
	HoldsWake   bool    `json:"holds_wakelock"`
	BigFreqMHz  float64 `json:"big_freq_mhz"`
	OnlineCores int     `json:"online_cores"`
}

// HandleIntent dispatches an intent the way the paper's app does: RUN pulls
// the latest definition from the backend, executes it, and uploads the log;
// STATUS reports device state. The returned bytes are JSON (the run log or
// the status report).
func (a *App) HandleIntent(in Intent) ([]byte, error) {
	switch in.Action {
	case ActionRun:
		return a.handleRun(in)
	case ActionStatus:
		rep := StatusReport{
			Device:      a.dev.Name(),
			Model:       a.dev.Model().Name,
			DieTempC:    float64(a.dev.ReadTempSensor()),
			Busy:        a.dev.Busy(),
			HoldsWake:   a.dev.HoldsWakelock(),
			BigFreqMHz:  float64(a.dev.BigFrequency()),
			OnlineCores: a.dev.OnlineBigCores(),
		}
		return json.Marshal(rep)
	default:
		return nil, fmt.Errorf("app: unknown intent action %q", in.Action)
	}
}

func (a *App) handleRun(in Intent) ([]byte, error) {
	// Pull the latest definition — every invocation, like the paper's
	// WebView pulling the latest JavaScript.
	raw, err := a.backend.Fetch()
	if err != nil {
		return nil, err
	}
	var def BenchmarkDef
	if err := json.Unmarshal(raw, &def); err != nil {
		return nil, fmt.Errorf("app: backend served malformed definition: %w", err)
	}
	if err := def.Validate(); err != nil {
		return nil, fmt.Errorf("app: backend served invalid definition: %w", err)
	}
	// An intent extra may override the mode for this run (the paper fires
	// different intents for the two experiments).
	if m, ok := in.Extras["mode"]; ok {
		def.Mode = m
		if err := def.Validate(); err != nil {
			return nil, err
		}
	}

	runner := &accubench.Runner{Device: a.dev, Monitor: a.mon, Box: a.box, Config: def.config()}
	res, err := runner.Run()
	if err != nil {
		return nil, err
	}

	lg := RunLog{
		Device:     a.dev.Name(),
		Model:      a.dev.Model().Name,
		DefVersion: def.Version,
		Mode:       def.Mode,
	}
	for _, it := range res.Iterations {
		lg.Scores = append(lg.Scores, it.Score)
		lg.EnergiesJ = append(lg.EnergiesJ, float64(it.Energy.Energy))
		lg.MeanFreqMHz = append(lg.MeanFreqMHz, float64(it.MeanBigFreq))
		lg.CooldownSecs = append(lg.CooldownSecs, it.CooldownTook.Seconds())
		lg.PeakDieTempsC = append(lg.PeakDieTempsC, float64(it.PeakDieTemp))
	}
	out, err := json.Marshal(lg)
	if err != nil {
		return nil, err
	}
	if err := a.backend.Upload(out); err != nil {
		return nil, err
	}
	return out, nil
}
