package soc

import (
	"fmt"

	"accubench/internal/silicon"
	"accubench/internal/thermal"
	"accubench/internal/units"
)

// synthTable builds a static per-bin voltage table from a typical-silicon
// base row by subtracting stepMV per bin — used for parts (SD-805) that
// expose bins at runtime but whose table never surfaced in kernel sources,
// so the paper (and we) only know the scheme's shape.
func synthTable(freqs []units.MegaHertz, baseMV []float64, bins int, stepMV float64) *silicon.VoltageTable {
	rows := make([][]float64, bins)
	for b := 0; b < bins; b++ {
		row := make([]float64, len(baseMV))
		for i, mv := range baseMV {
			row[i] = mv - float64(b)*stepMV
		}
		rows[b] = row
	}
	t, err := silicon.NewVoltageTable(freqs, rows)
	if err != nil {
		panic(fmt.Sprintf("soc: synthesized table invalid: %v", err))
	}
	return t
}

// SD800 returns the Snapdragon 800 (28 nm, 2013): the quad-core Krait 400
// of the Nexus 5, with the paper's Table I as its voltage scheme.
func SD800() *SoC {
	return &SoC{
		Name:    "SD-800",
		Process: "28nm",
		Year:    2013,
		Big: Cluster{
			Name:  "Krait-400",
			Cores: 4,
			OPPs:  []units.MegaHertz{300, 729, 960, 1574, 2265},
			Ceff:  0.85e-9,
			// The paper sizes the π task to ~1 s/iteration on the Nexus 6's
			// 2.65 GHz Krait 450; the Krait 400 is the same microarchitecture.
			CyclesPerIteration: 2.55e9,
		},
		Leakage: silicon.LeakageModel{I0: 0.52, Vref: 1.0, VoltExp: 2, Tref: 25, TSlope: 34},
		Uncore:  0.20,
		Voltages: StaticTable{
			Table: silicon.Nexus5Table(),
		},
		Bins: 7,
	}
}

// SD805 returns the Snapdragon 805 (28 nm, 2014): the Nexus 6's quad Krait
// 450 — a frequency bump on the same node, which is why the paper finds it
// *less* efficient than the SD-800 (Fig. 13).
func SD805() *SoC {
	freqs := []units.MegaHertz{300, 729, 1190, 1958, 2649}
	return &SoC{
		Name:    "SD-805",
		Process: "28nm",
		Year:    2014,
		Big: Cluster{
			Name:               "Krait-450",
			Cores:              4,
			OPPs:               freqs,
			Ceff:               0.95e-9,
			CyclesPerIteration: 2.649e9, // 1 iteration/s at max freq — the paper's sizing anchor
		},
		// Pushed clocks on the same 28 nm node: leakier than the SD-800.
		Leakage:  silicon.LeakageModel{I0: 0.42, Vref: 1.0, VoltExp: 2, Tref: 25, TSlope: 30},
		Uncore:   0.25,
		Voltages: StaticTable{Table: synthTable(freqs, []float64{800, 840, 905, 1000, 1100}, 7, 18)},
		Bins:     7,
	}
}

// SD810 returns the Snapdragon 810 (20 nm, 2015): the Nexus 6P's
// 4×Cortex-A57 + 4×Cortex-A53 big.LITTLE part, infamous for thermal
// throttling, with RBCPR closed-loop voltage instead of a static table.
func SD810() *SoC {
	return &SoC{
		Name:    "SD-810",
		Process: "20nm",
		Year:    2015,
		Big: Cluster{
			Name:               "Cortex-A57",
			Cores:              4,
			OPPs:               []units.MegaHertz{384, 960, 1248, 1555, 1958},
			Ceff:               1.05e-9,
			CyclesPerIteration: 1.9e9, // A57 out-of-order core: better IPC than Krait
		},
		Little: &Cluster{
			Name:               "Cortex-A53",
			Cores:              4,
			OPPs:               []units.MegaHertz{384, 960, 1248, 1555},
			Ceff:               0.35e-9,
			CyclesPerIteration: 3.1e9, // in-order core
		},
		// 20 nm planar was a notoriously leaky node.
		Leakage: silicon.LeakageModel{I0: 0.62, Vref: 1.0, VoltExp: 2, Tref: 25, TSlope: 32},
		Uncore:  0.30,
		Voltages: RBCPR{
			Curve:       vf(384, 800, 960, 850, 1248, 900, 1555, 950, 1958, 1050),
			LeakageTrim: 0.02,
			TempTrim:    0.0006,
			TempRef:     40,
			MaxTrim:     0.12,
		},
		Bins: 1, // all the paper's Nexus 6P devices reported "speed-bin 0"
	}
}

// SD820 returns the Snapdragon 820 (14 nm FinFET, 2016): the LG G5's quad
// Kryo — core count cut back from the 810's octa-core, "possibly due to the
// significant levels of thermal throttling on the Nexus 6P".
func SD820() *SoC {
	return &SoC{
		Name:    "SD-820",
		Process: "14nm",
		Year:    2016,
		Big: Cluster{
			Name:               "Kryo",
			Cores:              4,
			OPPs:               []units.MegaHertz{307, 845, 1324, 1728, 2150},
			Ceff:               0.78e-9,
			CyclesPerIteration: 1.55e9,
		},
		Leakage: silicon.LeakageModel{I0: 0.45, Vref: 1.0, VoltExp: 2, Tref: 25, TSlope: 36},
		Uncore:  0.25,
		Voltages: RBCPR{
			Curve:       vf(307, 765, 845, 800, 1324, 865, 1728, 940, 2150, 1065),
			LeakageTrim: 0.02,
			TempTrim:    0.0005,
			TempRef:     40,
			MaxTrim:     0.10,
		},
		Bins: 1, // neither binning information nor voltage tables exposed
	}
}

// SD821 returns the Snapdragon 821 (14 nm FinFET, late 2016): the Google
// Pixel's speed-bumped SD-820 twin.
func SD821() *SoC {
	return &SoC{
		Name:    "SD-821",
		Process: "14nm",
		Year:    2016,
		Big: Cluster{
			Name:               "Kryo",
			Cores:              4,
			OPPs:               []units.MegaHertz{307, 1056, 1593, 1996, 2150},
			Ceff:               0.75e-9,
			CyclesPerIteration: 1.5e9,
		},
		Leakage: silicon.LeakageModel{I0: 0.42, Vref: 1.0, VoltExp: 2, Tref: 25, TSlope: 36},
		Uncore:  0.22,
		Voltages: RBCPR{
			Curve:       vf(307, 760, 1056, 810, 1593, 880, 1996, 975, 2150, 1025),
			LeakageTrim: 0.02,
			TempTrim:    0.0005,
			TempRef:     40,
			MaxTrim:     0.10,
		},
		Bins: 1,
	}
}

// Nexus5 returns the Nexus 5 handset model (SD-800).
func Nexus5() *DeviceModel {
	return &DeviceModel{
		Name: "Nexus 5",
		SoC:  SD800(),
		Body: thermal.PhoneBody{
			DieCapacitance:  3,
			CaseCapacitance: 80,
			DieToCase:       0.14,
			CaseToAmbient:   0.33,
		},
		Battery: BatterySpec{Capacity: 2300, Nominal: 3.80, Maximum: 4.35, InternalOhms: 0.12},
		Thermal: ThermalPolicy{
			ThrottleAt:      79,
			Hysteresis:      6,
			CoreOfflineAt:   80, // paper Fig. 1
			CoreOnlineBelow: 72,
			MinOnlineCores:  2,
			MinCapFreq:      960, // hammerhead bounds the cap; hotplug takes over
		},
		FixedFreq:   960,
		SensorNoise: 0.3,
	}
}

// Nexus6 returns the Nexus 6 handset model (SD-805) — a physically larger
// phone with more thermal mass and sink area.
func Nexus6() *DeviceModel {
	return &DeviceModel{
		Name: "Nexus 6",
		SoC:  SD805(),
		Body: thermal.PhoneBody{
			DieCapacitance:  3.5,
			CaseCapacitance: 110,
			DieToCase:       0.16,
			CaseToAmbient:   0.42,
		},
		Battery:     BatterySpec{Capacity: 3220, Nominal: 3.80, Maximum: 4.35, InternalOhms: 0.10},
		Thermal:     ThermalPolicy{ThrottleAt: 78, Hysteresis: 5},
		FixedFreq:   1190,
		SensorNoise: 0.3,
	}
}

// Nexus6P returns the Nexus 6P handset model (SD-810) — the aluminium body
// helps, but the 20 nm octa-core still throttles hard.
func Nexus6P() *DeviceModel {
	return &DeviceModel{
		Name: "Nexus 6P",
		SoC:  SD810(),
		Body: thermal.PhoneBody{
			DieCapacitance:  4,
			CaseCapacitance: 120,
			DieToCase:       0.18,
			CaseToAmbient:   0.60,
		},
		Battery:     BatterySpec{Capacity: 3450, Nominal: 3.84, Maximum: 4.35, InternalOhms: 0.10},
		Thermal:     ThermalPolicy{ThrottleAt: 76, Hysteresis: 4},
		FixedFreq:   960,
		SensorNoise: 0.3,
	}
}

// LGG5 returns the LG G5 handset model (SD-820), including its anomalous
// input-voltage throttle: with the Monsoon at the battery's nominal 3.85 V
// the OS caps the CPU ~20% below its top frequency (paper Fig. 10).
func LGG5() *DeviceModel {
	return &DeviceModel{
		Name: "LG G5",
		SoC:  SD820(),
		Body: thermal.PhoneBody{
			DieCapacitance:  3,
			CaseCapacitance: 90,
			DieToCase:       0.30,
			CaseToAmbient:   0.55,
		},
		Battery: BatterySpec{Capacity: 2800, Nominal: 3.85, Maximum: 4.40, InternalOhms: 0.09},
		Thermal: ThermalPolicy{ThrottleAt: 73, Hysteresis: 4},
		VoltageThrottle: &InputVoltageThrottle{
			Threshold: 3.95,
			CapFreq:   1728,
		},
		FixedFreq:   845,
		SensorNoise: 0.3,
	}
}

// Pixel returns the Google Pixel handset model (SD-821).
func Pixel() *DeviceModel {
	return &DeviceModel{
		Name: "Google Pixel",
		SoC:  SD821(),
		Body: thermal.PhoneBody{
			DieCapacitance:  3,
			CaseCapacitance: 95,
			DieToCase:       0.24,
			CaseToAmbient:   0.45,
		},
		Battery:     BatterySpec{Capacity: 2770, Nominal: 3.85, Maximum: 4.40, InternalOhms: 0.09},
		Thermal:     ThermalPolicy{ThrottleAt: 73, Hysteresis: 4},
		FixedFreq:   1056,
		SensorNoise: 0.3,
	}
}

// Models returns every handset model in the study, in SoC-generation order —
// the iteration order of Table II.
func Models() []*DeviceModel {
	return []*DeviceModel{Nexus5(), Nexus6(), Nexus6P(), LGG5(), Pixel()}
}

// ModelByName looks a handset model up by its product name.
func ModelByName(name string) (*DeviceModel, error) {
	for _, m := range Models() {
		if m.Name == name {
			return m, nil
		}
	}
	return nil, fmt.Errorf("soc: unknown device model %q", name)
}
