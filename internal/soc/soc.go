// Package soc describes the systems-on-chip and handset models under study:
// the five Qualcomm generations of the paper (SD-800, SD-805, SD-810,
// SD-820, SD-821) and the phones that carried them (Nexus 5, Nexus 6,
// Nexus 6P, LG G5, Google Pixel).
//
// A SoC bundles its CPU clusters (OPP ladders, effective capacitance,
// workload throughput), its leakage model, and its voltage scheme — either
// a static per-bin voltage table (SD-800 era, paper Table I) or the
// closed-loop RBCPR trimming of later parts. A DeviceModel adds the
// handset's thermal body, battery and throttling policy.
package soc

import (
	"fmt"

	"accubench/internal/silicon"
	"accubench/internal/thermal"
	"accubench/internal/units"
)

// Cluster is one CPU cluster (e.g. the big A57 quad of the SD-810).
type Cluster struct {
	// Name is e.g. "Krait-400" or "Cortex-A57".
	Name string
	// Cores is the number of cores in the cluster.
	Cores int
	// OPPs is the ascending frequency ladder the cluster can run at.
	OPPs []units.MegaHertz
	// Ceff is the effective switching capacitance of one core.
	Ceff units.Farads
	// CyclesPerIteration is how many clock cycles one π-workload iteration
	// (4,285 digits — paper §III) costs on this microarchitecture. It
	// encodes IPC differences between generations.
	CyclesPerIteration float64
}

// MaxFreq returns the top of the ladder.
func (c Cluster) MaxFreq() units.MegaHertz {
	if len(c.OPPs) == 0 {
		return 0
	}
	return c.OPPs[len(c.OPPs)-1]
}

// StepDown returns the next OPP below f, or f unchanged if already at the
// bottom. Frequencies off the ladder snap to the next OPP below.
func (c Cluster) StepDown(f units.MegaHertz) units.MegaHertz {
	prev := c.OPPs[0]
	for _, opp := range c.OPPs {
		if opp >= f {
			break
		}
		prev = opp
	}
	return prev
}

// StepUp returns the next OPP above f, or f unchanged if already at the top.
func (c Cluster) StepUp(f units.MegaHertz) units.MegaHertz {
	for _, opp := range c.OPPs {
		if opp > f {
			return opp
		}
	}
	return f
}

// IterationsPerSecond returns the cluster's per-core workload throughput at
// the given frequency.
func (c Cluster) IterationsPerSecond(f units.MegaHertz) float64 {
	if c.CyclesPerIteration <= 0 {
		return 0
	}
	return f.Hertz() / c.CyclesPerIteration
}

// Validate checks the cluster's invariants.
func (c Cluster) Validate() error {
	if c.Cores <= 0 {
		return fmt.Errorf("soc: cluster %q has %d cores", c.Name, c.Cores)
	}
	if len(c.OPPs) == 0 {
		return fmt.Errorf("soc: cluster %q has no OPPs", c.Name)
	}
	for i := 1; i < len(c.OPPs); i++ {
		if c.OPPs[i] <= c.OPPs[i-1] {
			return fmt.Errorf("soc: cluster %q OPP ladder not ascending at %d", c.Name, i)
		}
	}
	if c.Ceff <= 0 {
		return fmt.Errorf("soc: cluster %q Ceff %v", c.Name, c.Ceff)
	}
	if c.CyclesPerIteration <= 0 {
		return fmt.Errorf("soc: cluster %q CyclesPerIteration %v", c.Name, c.CyclesPerIteration)
	}
	return nil
}

// VoltageScheme resolves the supply voltage for a chip at an operating point.
// Static tables ignore die temperature; RBCPR uses it.
type VoltageScheme interface {
	// Voltage returns the rail voltage for the given chip corner running a
	// cluster at frequency f with die temperature t.
	Voltage(corner silicon.ProcessCorner, f units.MegaHertz, t units.Celsius) (units.Volts, error)
	// ExposesBins reports whether the scheme makes binning information
	// visible at runtime (true for the SD-800 era, false afterwards — the
	// paper notes newer chips hide it).
	ExposesBins() bool
}

// StaticTable adapts a silicon.VoltageTable to the VoltageScheme interface.
type StaticTable struct {
	Table *silicon.VoltageTable
}

// Voltage implements VoltageScheme by table lookup on the chip's bin.
func (s StaticTable) Voltage(corner silicon.ProcessCorner, f units.MegaHertz, _ units.Celsius) (units.Volts, error) {
	return s.Table.Voltage(corner.Bin, f)
}

// ExposesBins reports true: the table is readable from kernel sources.
func (s StaticTable) ExposesBins() bool { return true }

// TempInvariant reports true: a static table resolves voltage from bin and
// frequency alone, so callers may cache lookups without keying on die
// temperature.
func (s StaticTable) TempInvariant() bool { return true }

// SoC is one chip generation.
type SoC struct {
	// Name is e.g. "SD-800".
	Name string
	// Process is the fabrication node, e.g. "28nm".
	Process string
	// Year the SoC shipped.
	Year int
	// Big is the (or the only) high-performance cluster.
	Big Cluster
	// Little is the efficiency cluster; nil for homogeneous quads.
	Little *Cluster
	// Leakage is the generation's leakage model (per-chip corners scale it).
	Leakage silicon.LeakageModel
	// Uncore is constant CPU-rail overhead while any core is online.
	Uncore units.Watts
	// Voltages resolves rail voltages.
	Voltages VoltageScheme
	// Bins is how many voltage bins the product defines.
	Bins int
}

// Validate checks the SoC's invariants.
func (s *SoC) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("soc: unnamed SoC")
	}
	if err := s.Big.Validate(); err != nil {
		return err
	}
	if s.Little != nil {
		if err := s.Little.Validate(); err != nil {
			return err
		}
	}
	if s.Voltages == nil {
		return fmt.Errorf("soc: %s has no voltage scheme", s.Name)
	}
	if s.Bins <= 0 {
		return fmt.Errorf("soc: %s has %d bins", s.Name, s.Bins)
	}
	// Every OPP must resolve to a voltage for every bin.
	for b := 0; b < s.Bins; b++ {
		corner := silicon.ProcessCorner{Bin: silicon.Bin(b), Leakage: 1}
		clusters := []Cluster{s.Big}
		if s.Little != nil {
			clusters = append(clusters, *s.Little)
		}
		for _, c := range clusters {
			for _, f := range c.OPPs {
				if _, err := s.Voltages.Voltage(corner, f, 40); err != nil {
					return fmt.Errorf("soc: %s bin %d %v: %w", s.Name, b, f, err)
				}
			}
		}
	}
	return nil
}

// TotalCores returns the core count across clusters.
func (s *SoC) TotalCores() int {
	n := s.Big.Cores
	if s.Little != nil {
		n += s.Little.Cores
	}
	return n
}

// ThermalPolicy is a handset's thermal-engine configuration: the governor
// consumes it every poll interval.
type ThermalPolicy struct {
	// ThrottleAt is the die temperature above which the engine steps the
	// frequency down one OPP per poll.
	ThrottleAt units.Celsius
	// Hysteresis is how far below ThrottleAt the die must cool before the
	// engine steps frequency back up.
	Hysteresis float64
	// CoreOfflineAt, if non-zero, is the die temperature at which the
	// engine additionally offlines one big core (Nexus 5 behaviour, paper
	// Fig. 1: "Once thermal limits of 80°C are reached, one CPU core is
	// shut down").
	CoreOfflineAt units.Celsius
	// CoreOnlineBelow is the temperature below which offlined cores return.
	CoreOnlineBelow units.Celsius
	// MinOnlineCores bounds how many big cores the engine may offline.
	MinOnlineCores int
	// MinCapFreq, if non-zero, is the lowest frequency the engine's
	// step-down throttling may impose. The Nexus 5's msm_thermal config
	// bounds the frequency cap and relies on core hotplug past that point —
	// which is how its die actually reaches the 80 °C shutdown trip.
	MinCapFreq units.MegaHertz
}

// InputVoltageThrottle models the LG G5's anomalous non-thermal throttling
// (paper Fig. 10): when the supply voltage sags below Threshold, the OS caps
// the CPU to CapFreq.
type InputVoltageThrottle struct {
	// Threshold is the supply voltage below which the cap engages.
	Threshold units.Volts
	// CapFreq is the maximum frequency while throttled.
	CapFreq units.MegaHertz
}

// BatterySpec describes the handset's stock battery.
type BatterySpec struct {
	Capacity units.MilliampHours
	// Nominal is the voltage printed on the label — what the paper
	// initially configured the Monsoon to.
	Nominal units.Volts
	// Maximum is the full-charge voltage printed on the label (4.4 V on the
	// LG G5 — the setting that un-throttled it).
	Maximum units.Volts
	// InternalOhms is the pack's series resistance.
	InternalOhms float64
}

// DeviceModel is a handset product: a SoC in a body with a policy.
type DeviceModel struct {
	// Name is e.g. "Nexus 5".
	Name string
	// SoC is the chip generation inside.
	SoC *SoC
	// Body is the handset's thermal configuration.
	Body thermal.PhoneBody
	// Battery is the stock pack.
	Battery BatterySpec
	// Thermal is the throttling policy.
	Thermal ThermalPolicy
	// VoltageThrottle is non-nil only for handsets that throttle on input
	// voltage (LG G5).
	VoltageThrottle *InputVoltageThrottle
	// FixedFreq is the frequency the paper's FIXED-FREQUENCY workload pins:
	// "a fixed, low frequency that was guaranteed to not thermally
	// throttle".
	FixedFreq units.MegaHertz
	// SensorNoise is the 1σ noise of the on-die temperature sensor in °C.
	SensorNoise float64
}

// Validate checks the model's invariants.
func (m *DeviceModel) Validate() error {
	if m.Name == "" {
		return fmt.Errorf("soc: unnamed device model")
	}
	if m.SoC == nil {
		return fmt.Errorf("soc: %s has no SoC", m.Name)
	}
	if err := m.SoC.Validate(); err != nil {
		return err
	}
	if m.Thermal.ThrottleAt <= 0 {
		return fmt.Errorf("soc: %s has no throttle point", m.Name)
	}
	if m.Thermal.Hysteresis <= 0 {
		return fmt.Errorf("soc: %s has non-positive hysteresis", m.Name)
	}
	found := false
	for _, f := range m.SoC.Big.OPPs {
		if f == m.FixedFreq {
			found = true
			break
		}
	}
	if !found {
		return fmt.Errorf("soc: %s FixedFreq %v is not an OPP", m.Name, m.FixedFreq)
	}
	return nil
}
