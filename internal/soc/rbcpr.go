package soc

import (
	"fmt"

	"accubench/internal/silicon"
	"accubench/internal/units"
)

// RBCPR models the Rapid-Bridge Core Power Reduction block the paper
// describes on the SD-810 and later: "a feedback loop to optimize the
// voltage settings for each core. These runtime voltage settings are
// determined based on the binning process and current temperature of the
// chip." There is no static per-bin table to read out of the kernel —
// which is exactly why the paper could not extract one for the Nexus 6P.
//
// The model starts from a typical-silicon voltage/frequency curve and trims
// a margin per chip:
//
//   - Leakier (faster) silicon closes timing with less voltage, so the trim
//     grows with the chip's leakage corner (the CPR analogue of voltage
//     binning).
//   - Hot silicon is *slower* at the near-threshold end but CPR recovers
//     guard-band margin as temperature rises; the net effect on these parts
//     is a small negative voltage slope with temperature.
//
// The trim is clamped so the rail never leaves the curve's safety window.
type RBCPR struct {
	// Curve is the typical-silicon voltage at each OPP (ascending by
	// frequency, snapping up like cpufreq).
	Curve []silicon.VoltagePoint
	// LeakageTrim is the fractional voltage reduction per unit of leakage
	// corner above 1.0 (e.g. 0.04 → a 1.5× leaky chip runs 2% lower V).
	LeakageTrim float64
	// TempTrim is the fractional voltage reduction per °C above TempRef.
	TempTrim float64
	// TempRef is the reference temperature for the temperature trim.
	TempRef units.Celsius
	// MaxTrim caps the total fractional trim in either direction.
	MaxTrim float64
}

// Voltage implements VoltageScheme.
func (r RBCPR) Voltage(corner silicon.ProcessCorner, f units.MegaHertz, t units.Celsius) (units.Volts, error) {
	if len(r.Curve) == 0 {
		return 0, fmt.Errorf("soc: RBCPR has no voltage curve")
	}
	var base units.Volts
	found := false
	for _, p := range r.Curve {
		if f <= p.Freq {
			base = p.Voltage
			found = true
			break
		}
	}
	if !found {
		return 0, fmt.Errorf("soc: frequency %v above RBCPR curve top %v", f, r.Curve[len(r.Curve)-1].Freq)
	}
	trim := r.LeakageTrim*(corner.Leakage-1) + r.TempTrim*t.Delta(r.TempRef)
	trim = units.Clamp(trim, -r.MaxTrim, r.MaxTrim)
	return units.Volts(float64(base) * (1 - trim)), nil
}

// ExposesBins reports false: CPR-era parts hide binning from userspace.
func (r RBCPR) ExposesBins() bool { return false }

// TempInvariant reports false: the CPR trim is a continuous function of die
// temperature, so any cache of Voltage results must key on the exact
// temperature — coarsening the key would alter resolved voltages.
func (r RBCPR) TempInvariant() bool { return false }

// vf is a catalog helper building a VoltagePoint list from (MHz, mV) pairs.
func vf(pairs ...float64) []silicon.VoltagePoint {
	if len(pairs)%2 != 0 {
		panic("soc: vf needs (freq, mV) pairs")
	}
	out := make([]silicon.VoltagePoint, 0, len(pairs)/2)
	for i := 0; i < len(pairs); i += 2 {
		out = append(out, silicon.VoltagePoint{
			Freq:    units.MegaHertz(pairs[i]),
			Voltage: units.FromMillivolts(pairs[i+1]),
		})
	}
	return out
}
