package soc

import (
	"bytes"
	"testing"
)

// FuzzModelCodec fuzzes the model file decoder — one of the two
// untrusted-input surfaces (model files are user-editable calibration
// artifacts). The decoder must never panic, and any input it accepts
// must round-trip stably: save(load(b)) re-loads to the identical
// serialization, so a file surviving one load/save cycle survives them
// all.
func FuzzModelCodec(f *testing.F) {
	for _, m := range Models() {
		var buf bytes.Buffer
		if err := SaveModel(&buf, m); err != nil {
			f.Fatalf("seeding: %v", err)
		}
		f.Add(buf.Bytes())
	}
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"name":"x"}`))
	f.Add([]byte(`not json`))
	f.Fuzz(func(t *testing.T, raw []byte) {
		m, err := LoadModel(bytes.NewReader(raw))
		if err != nil {
			return // rejected input: fine, as long as it didn't panic
		}
		var first bytes.Buffer
		if err := SaveModel(&first, m); err != nil {
			t.Fatalf("accepted model failed to save: %v", err)
		}
		m2, err := LoadModel(bytes.NewReader(first.Bytes()))
		if err != nil {
			t.Fatalf("saved model failed to re-load: %v\nserialized: %s", err, first.Bytes())
		}
		var second bytes.Buffer
		if err := SaveModel(&second, m2); err != nil {
			t.Fatalf("re-loaded model failed to save: %v", err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Fatalf("codec round-trip unstable:\nfirst:  %s\nsecond: %s", first.Bytes(), second.Bytes())
		}
	})
}
