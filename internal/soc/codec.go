package soc

import (
	"encoding/json"
	"fmt"
	"io"

	"accubench/internal/silicon"
	"accubench/internal/thermal"
	"accubench/internal/units"
)

// This file (de)serializes DeviceModels so downstream users can study
// handsets beyond the paper's five without writing Go: define the SoC,
// body and policies in JSON, load it, and run ACCUBENCH on it.
//
// The only polymorphic part is the voltage scheme; it is encoded with a
// type tag ("static" carries per-bin millivolt rows, "rbcpr" carries the
// curve and trims).

// modelJSON is the on-disk shape of a DeviceModel.
type modelJSON struct {
	Name    string      `json:"name"`
	SoC     socJSON     `json:"soc"`
	Body    bodyJSON    `json:"body"`
	Battery batteryJSON `json:"battery"`
	Thermal thermalJSON `json:"thermal"`
	// VoltageThrottle is optional (LG G5 style).
	VoltageThrottle *voltageThrottleJSON `json:"voltage_throttle,omitempty"`
	FixedFreqMHz    float64              `json:"fixed_freq_mhz"`
	SensorNoiseC    float64              `json:"sensor_noise_c"`
}

type socJSON struct {
	Name     string       `json:"name"`
	Process  string       `json:"process"`
	Year     int          `json:"year"`
	Big      clusterJSON  `json:"big"`
	Little   *clusterJSON `json:"little,omitempty"`
	Leakage  leakageJSON  `json:"leakage"`
	UncoreW  float64      `json:"uncore_w"`
	Voltages schemeJSON   `json:"voltages"`
	Bins     int          `json:"bins"`
}

type clusterJSON struct {
	Name               string    `json:"name"`
	Cores              int       `json:"cores"`
	OPPsMHz            []float64 `json:"opps_mhz"`
	CeffNF             float64   `json:"ceff_nf"`
	CyclesPerIteration float64   `json:"cycles_per_iteration"`
}

type leakageJSON struct {
	I0A     float64 `json:"i0_a"`
	VrefV   float64 `json:"vref_v"`
	VoltExp float64 `json:"volt_exp"`
	TrefC   float64 `json:"tref_c"`
	TSlopeC float64 `json:"tslope_c"`
}

type schemeJSON struct {
	// Type is "static" or "rbcpr".
	Type string `json:"type"`
	// Static fields.
	FreqsMHz []float64   `json:"freqs_mhz,omitempty"`
	BinRowsM [][]float64 `json:"bin_rows_mv,omitempty"`
	// RBCPR fields.
	CurveMHzMV  [][2]float64 `json:"curve_mhz_mv,omitempty"`
	LeakageTrim float64      `json:"leakage_trim,omitempty"`
	TempTrim    float64      `json:"temp_trim,omitempty"`
	TempRefC    float64      `json:"temp_ref_c,omitempty"`
	MaxTrim     float64      `json:"max_trim,omitempty"`
}

type bodyJSON struct {
	DieCapacitanceJC  float64 `json:"die_capacitance_j_c"`
	CaseCapacitanceJC float64 `json:"case_capacitance_j_c"`
	DieToCaseWC       float64 `json:"die_to_case_w_c"`
	CaseToAmbientWC   float64 `json:"case_to_ambient_w_c"`
}

type batteryJSON struct {
	CapacityMAh  float64 `json:"capacity_mah"`
	NominalV     float64 `json:"nominal_v"`
	MaximumV     float64 `json:"maximum_v"`
	InternalOhms float64 `json:"internal_ohms"`
}

type thermalJSON struct {
	ThrottleAtC      float64 `json:"throttle_at_c"`
	HysteresisC      float64 `json:"hysteresis_c"`
	CoreOfflineAtC   float64 `json:"core_offline_at_c,omitempty"`
	CoreOnlineBelowC float64 `json:"core_online_below_c,omitempty"`
	MinOnlineCores   int     `json:"min_online_cores,omitempty"`
	MinCapFreqMHz    float64 `json:"min_cap_freq_mhz,omitempty"`
}

type voltageThrottleJSON struct {
	ThresholdV float64 `json:"threshold_v"`
	CapFreqMHz float64 `json:"cap_freq_mhz"`
}

// SaveModel writes the model as indented JSON.
func SaveModel(w io.Writer, m *DeviceModel) error {
	if err := m.Validate(); err != nil {
		return fmt.Errorf("soc: refusing to save invalid model: %w", err)
	}
	mj := modelJSON{
		Name: m.Name,
		SoC: socJSON{
			Name:    m.SoC.Name,
			Process: m.SoC.Process,
			Year:    m.SoC.Year,
			Big:     clusterToJSON(m.SoC.Big),
			Leakage: leakageJSON{
				I0A:     float64(m.SoC.Leakage.I0),
				VrefV:   float64(m.SoC.Leakage.Vref),
				VoltExp: m.SoC.Leakage.VoltExp,
				TrefC:   float64(m.SoC.Leakage.Tref),
				TSlopeC: m.SoC.Leakage.TSlope,
			},
			UncoreW: float64(m.SoC.Uncore),
			Bins:    m.SoC.Bins,
		},
		Body: bodyJSON{
			DieCapacitanceJC:  m.Body.DieCapacitance,
			CaseCapacitanceJC: m.Body.CaseCapacitance,
			DieToCaseWC:       m.Body.DieToCase,
			CaseToAmbientWC:   m.Body.CaseToAmbient,
		},
		Battery: batteryJSON{
			CapacityMAh:  float64(m.Battery.Capacity),
			NominalV:     float64(m.Battery.Nominal),
			MaximumV:     float64(m.Battery.Maximum),
			InternalOhms: m.Battery.InternalOhms,
		},
		Thermal: thermalJSON{
			ThrottleAtC:      float64(m.Thermal.ThrottleAt),
			HysteresisC:      m.Thermal.Hysteresis,
			CoreOfflineAtC:   float64(m.Thermal.CoreOfflineAt),
			CoreOnlineBelowC: float64(m.Thermal.CoreOnlineBelow),
			MinOnlineCores:   m.Thermal.MinOnlineCores,
			MinCapFreqMHz:    float64(m.Thermal.MinCapFreq),
		},
		FixedFreqMHz: float64(m.FixedFreq),
		SensorNoiseC: m.SensorNoise,
	}
	if m.SoC.Little != nil {
		lj := clusterToJSON(*m.SoC.Little)
		mj.SoC.Little = &lj
	}
	if m.VoltageThrottle != nil {
		mj.VoltageThrottle = &voltageThrottleJSON{
			ThresholdV: float64(m.VoltageThrottle.Threshold),
			CapFreqMHz: float64(m.VoltageThrottle.CapFreq),
		}
	}
	switch v := m.SoC.Voltages.(type) {
	case StaticTable:
		mj.SoC.Voltages.Type = "static"
		for _, f := range v.Table.Frequencies() {
			mj.SoC.Voltages.FreqsMHz = append(mj.SoC.Voltages.FreqsMHz, float64(f))
		}
		for b := 0; b < v.Table.Bins(); b++ {
			row, err := v.Table.Row(silicon.Bin(b))
			if err != nil {
				return err
			}
			mv := make([]float64, len(row))
			for i, p := range row {
				mv[i] = p.Voltage.Millivolts()
			}
			mj.SoC.Voltages.BinRowsM = append(mj.SoC.Voltages.BinRowsM, mv)
		}
	case RBCPR:
		mj.SoC.Voltages.Type = "rbcpr"
		for _, p := range v.Curve {
			mj.SoC.Voltages.CurveMHzMV = append(mj.SoC.Voltages.CurveMHzMV,
				[2]float64{float64(p.Freq), p.Voltage.Millivolts()})
		}
		mj.SoC.Voltages.LeakageTrim = v.LeakageTrim
		mj.SoC.Voltages.TempTrim = v.TempTrim
		mj.SoC.Voltages.TempRefC = float64(v.TempRef)
		mj.SoC.Voltages.MaxTrim = v.MaxTrim
	default:
		return fmt.Errorf("soc: cannot serialize voltage scheme %T", m.SoC.Voltages)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(mj)
}

func clusterToJSON(c Cluster) clusterJSON {
	cj := clusterJSON{
		Name:               c.Name,
		Cores:              c.Cores,
		CeffNF:             float64(c.Ceff) * 1e9,
		CyclesPerIteration: c.CyclesPerIteration,
	}
	for _, f := range c.OPPs {
		cj.OPPsMHz = append(cj.OPPsMHz, float64(f))
	}
	return cj
}

func clusterFromJSON(cj clusterJSON) Cluster {
	c := Cluster{
		Name:               cj.Name,
		Cores:              cj.Cores,
		// Divide by the same constant the save path multiplies by: scaling
		// by c then by a rounded 1/c drifts a ULP per save/load cycle,
		// whereas multiply-then-divide by one constant is idempotent.
		Ceff:               units.Farads(cj.CeffNF / 1e9),
		CyclesPerIteration: cj.CyclesPerIteration,
	}
	for _, f := range cj.OPPsMHz {
		c.OPPs = append(c.OPPs, units.MegaHertz(f))
	}
	return c
}

// LoadModel reads a JSON model and validates it fully before returning.
func LoadModel(r io.Reader) (*DeviceModel, error) {
	var mj modelJSON
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&mj); err != nil {
		return nil, fmt.Errorf("soc: malformed model JSON: %w", err)
	}
	s := &SoC{
		Name:    mj.SoC.Name,
		Process: mj.SoC.Process,
		Year:    mj.SoC.Year,
		Big:     clusterFromJSON(mj.SoC.Big),
		Leakage: silicon.LeakageModel{
			I0:      units.Amps(mj.SoC.Leakage.I0A),
			Vref:    units.Volts(mj.SoC.Leakage.VrefV),
			VoltExp: mj.SoC.Leakage.VoltExp,
			Tref:    units.Celsius(mj.SoC.Leakage.TrefC),
			TSlope:  mj.SoC.Leakage.TSlopeC,
		},
		Uncore: units.Watts(mj.SoC.UncoreW),
		Bins:   mj.SoC.Bins,
	}
	if mj.SoC.Little != nil {
		l := clusterFromJSON(*mj.SoC.Little)
		s.Little = &l
	}
	switch mj.SoC.Voltages.Type {
	case "static":
		freqs := make([]units.MegaHertz, len(mj.SoC.Voltages.FreqsMHz))
		for i, f := range mj.SoC.Voltages.FreqsMHz {
			freqs[i] = units.MegaHertz(f)
		}
		tbl, err := silicon.NewVoltageTable(freqs, mj.SoC.Voltages.BinRowsM)
		if err != nil {
			return nil, fmt.Errorf("soc: model %q: %w", mj.Name, err)
		}
		s.Voltages = StaticTable{Table: tbl}
	case "rbcpr":
		r := RBCPR{
			LeakageTrim: mj.SoC.Voltages.LeakageTrim,
			TempTrim:    mj.SoC.Voltages.TempTrim,
			TempRef:     units.Celsius(mj.SoC.Voltages.TempRefC),
			MaxTrim:     mj.SoC.Voltages.MaxTrim,
		}
		for _, p := range mj.SoC.Voltages.CurveMHzMV {
			r.Curve = append(r.Curve, silicon.VoltagePoint{
				Freq:    units.MegaHertz(p[0]),
				Voltage: units.FromMillivolts(p[1]),
			})
		}
		s.Voltages = r
	default:
		return nil, fmt.Errorf("soc: unknown voltage scheme type %q", mj.SoC.Voltages.Type)
	}
	m := &DeviceModel{
		Name: mj.Name,
		SoC:  s,
		Body: thermal.PhoneBody{
			DieCapacitance:  mj.Body.DieCapacitanceJC,
			CaseCapacitance: mj.Body.CaseCapacitanceJC,
			DieToCase:       mj.Body.DieToCaseWC,
			CaseToAmbient:   mj.Body.CaseToAmbientWC,
		},
		Battery: BatterySpec{
			Capacity:     units.MilliampHours(mj.Battery.CapacityMAh),
			Nominal:      units.Volts(mj.Battery.NominalV),
			Maximum:      units.Volts(mj.Battery.MaximumV),
			InternalOhms: mj.Battery.InternalOhms,
		},
		Thermal: ThermalPolicy{
			ThrottleAt:      units.Celsius(mj.Thermal.ThrottleAtC),
			Hysteresis:      mj.Thermal.HysteresisC,
			CoreOfflineAt:   units.Celsius(mj.Thermal.CoreOfflineAtC),
			CoreOnlineBelow: units.Celsius(mj.Thermal.CoreOnlineBelowC),
			MinOnlineCores:  mj.Thermal.MinOnlineCores,
			MinCapFreq:      units.MegaHertz(mj.Thermal.MinCapFreqMHz),
		},
		FixedFreq:   units.MegaHertz(mj.FixedFreqMHz),
		SensorNoise: mj.SensorNoiseC,
	}
	if mj.VoltageThrottle != nil {
		m.VoltageThrottle = &InputVoltageThrottle{
			Threshold: units.Volts(mj.VoltageThrottle.ThresholdV),
			CapFreq:   units.MegaHertz(mj.VoltageThrottle.CapFreqMHz),
		}
	}
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("soc: model %q invalid: %w", mj.Name, err)
	}
	return m, nil
}
