package soc

import (
	"math"
	"testing"

	"accubench/internal/silicon"
	"accubench/internal/units"
)

func TestAllCatalogModelsValidate(t *testing.T) {
	models := Models()
	if len(models) != 5 {
		t.Fatalf("catalog has %d models, want 5 (the paper's 5 SoC generations)", len(models))
	}
	for _, m := range models {
		if err := m.Validate(); err != nil {
			t.Errorf("%s: %v", m.Name, err)
		}
	}
}

func TestCatalogOrderMatchesTableII(t *testing.T) {
	want := []struct{ model, soc string }{
		{"Nexus 5", "SD-800"},
		{"Nexus 6", "SD-805"},
		{"Nexus 6P", "SD-810"},
		{"LG G5", "SD-820"},
		{"Google Pixel", "SD-821"},
	}
	for i, m := range Models() {
		if m.Name != want[i].model || m.SoC.Name != want[i].soc {
			t.Errorf("slot %d = %s/%s, want %s/%s", i, m.Name, m.SoC.Name, want[i].model, want[i].soc)
		}
	}
}

func TestModelByName(t *testing.T) {
	m, err := ModelByName("Nexus 6P")
	if err != nil {
		t.Fatal(err)
	}
	if m.SoC.Name != "SD-810" {
		t.Errorf("Nexus 6P SoC = %s", m.SoC.Name)
	}
	if _, err := ModelByName("iPhone"); err == nil {
		t.Error("unknown model accepted")
	}
}

func TestClusterStepping(t *testing.T) {
	c := SD800().Big
	if got := c.StepDown(2265); got != 1574 {
		t.Errorf("StepDown(2265) = %v", got)
	}
	if got := c.StepDown(300); got != 300 {
		t.Errorf("StepDown at floor = %v", got)
	}
	if got := c.StepUp(960); got != 1574 {
		t.Errorf("StepUp(960) = %v", got)
	}
	if got := c.StepUp(2265); got != 2265 {
		t.Errorf("StepUp at ceiling = %v", got)
	}
	// Off-ladder frequencies snap sensibly.
	if got := c.StepDown(1000); got != 960 {
		t.Errorf("StepDown(1000) = %v", got)
	}
	if got := c.StepUp(1000); got != 1574 {
		t.Errorf("StepUp(1000) = %v", got)
	}
	if c.MaxFreq() != 2265 {
		t.Errorf("MaxFreq = %v", c.MaxFreq())
	}
}

func TestPaperWorkloadSizingAnchor(t *testing.T) {
	// "This number was chosen as it was estimated to take roughly 1 second
	// to compute at the highest frequency on the Nexus 6."
	c := SD805().Big
	ips := c.IterationsPerSecond(c.MaxFreq())
	if math.Abs(ips-1.0) > 0.05 {
		t.Errorf("Nexus 6 max-freq throughput = %v iter/s, want ≈1", ips)
	}
}

func TestNewerCoresHaveBetterIPC(t *testing.T) {
	// Cycles per iteration must fall monotonically across Krait → A57 → Kryo.
	krait := SD800().Big.CyclesPerIteration
	a57 := SD810().Big.CyclesPerIteration
	kryo := SD820().Big.CyclesPerIteration
	if !(krait > a57 && a57 > kryo) {
		t.Errorf("IPC ordering wrong: Krait %v, A57 %v, Kryo %v cycles/iter", krait, a57, kryo)
	}
}

func TestSD810IsBigLittle(t *testing.T) {
	s := SD810()
	if s.Little == nil {
		t.Fatal("SD-810 has no LITTLE cluster")
	}
	if s.TotalCores() != 8 {
		t.Errorf("SD-810 cores = %d, want 8", s.TotalCores())
	}
	if s.Big.Cores != 4 || s.Little.Cores != 4 {
		t.Errorf("cluster split = %d+%d", s.Big.Cores, s.Little.Cores)
	}
	// LITTLE core must be cheaper and slower than big.
	if s.Little.Ceff >= s.Big.Ceff {
		t.Error("LITTLE Ceff not below big")
	}
	if s.Little.CyclesPerIteration <= s.Big.CyclesPerIteration {
		t.Error("LITTLE IPC not below big")
	}
}

func TestQuadGenerationsHaveNoLittle(t *testing.T) {
	for _, s := range []*SoC{SD800(), SD805(), SD820(), SD821()} {
		if s.Little != nil {
			t.Errorf("%s should be a homogeneous quad", s.Name)
		}
		if s.TotalCores() != 4 {
			t.Errorf("%s cores = %d", s.Name, s.TotalCores())
		}
	}
}

func TestBinExposureMatchesPaper(t *testing.T) {
	// SD-800/805 exposed binning at runtime; SD-810 onward hid it.
	if !SD800().Voltages.ExposesBins() {
		t.Error("SD-800 should expose bins")
	}
	if !SD805().Voltages.ExposesBins() {
		t.Error("SD-805 should expose bins")
	}
	for _, s := range []*SoC{SD810(), SD820(), SD821()} {
		if s.Voltages.ExposesBins() {
			t.Errorf("%s should hide bins (RBCPR era)", s.Name)
		}
	}
}

func TestSD800UsesPaperTableI(t *testing.T) {
	s := SD800()
	v, err := s.Voltages.Voltage(silicon.ProcessCorner{Bin: 0, Leakage: 0.6}, 2265, 40)
	if err != nil {
		t.Fatal(err)
	}
	if v.Millivolts() != 1100 {
		t.Errorf("bin-0 @2265 = %v mV, want 1100 (Table I)", v.Millivolts())
	}
	v, err = s.Voltages.Voltage(silicon.ProcessCorner{Bin: 6, Leakage: 2.0}, 2265, 40)
	if err != nil {
		t.Fatal(err)
	}
	if v.Millivolts() != 950 {
		t.Errorf("bin-6 @2265 = %v mV, want 950 (Table I)", v.Millivolts())
	}
}

func TestRBCPRTrimsLeakyChips(t *testing.T) {
	s := SD810()
	quiet := silicon.ProcessCorner{Leakage: 0.8}
	leaky := silicon.ProcessCorner{Leakage: 1.6}
	vq, err := s.Voltages.Voltage(quiet, 1958, 50)
	if err != nil {
		t.Fatal(err)
	}
	vl, err := s.Voltages.Voltage(leaky, 1958, 50)
	if err != nil {
		t.Fatal(err)
	}
	if vl >= vq {
		t.Errorf("leaky chip voltage %v not below quiet chip %v", vl, vq)
	}
}

func TestRBCPRTempTrim(t *testing.T) {
	s := SD810()
	corner := silicon.ProcessCorner{Leakage: 1}
	cold, _ := s.Voltages.Voltage(corner, 1958, 30)
	hot, _ := s.Voltages.Voltage(corner, 1958, 80)
	if hot >= cold {
		t.Errorf("hot voltage %v not trimmed below cold %v", hot, cold)
	}
}

func TestRBCPRTrimClamped(t *testing.T) {
	r := RBCPR{
		Curve:       vf(1000, 1000),
		LeakageTrim: 1.0, // absurd, must clamp
		TempTrim:    0.1,
		TempRef:     25,
		MaxTrim:     0.10,
	}
	v, err := r.Voltage(silicon.ProcessCorner{Leakage: 100}, 1000, 125)
	if err != nil {
		t.Fatal(err)
	}
	if v.Millivolts() < 899.9 {
		t.Errorf("trim exceeded clamp: %v mV", v.Millivolts())
	}
}

func TestRBCPRErrors(t *testing.T) {
	r := RBCPR{Curve: vf(1000, 900)}
	if _, err := r.Voltage(silicon.ProcessCorner{Leakage: 1}, 2000, 40); err == nil {
		t.Error("frequency above curve accepted")
	}
	empty := RBCPR{}
	if _, err := empty.Voltage(silicon.ProcessCorner{Leakage: 1}, 100, 40); err == nil {
		t.Error("empty curve accepted")
	}
}

func TestVFHelperPanicsOnOddArgs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("vf with odd args did not panic")
		}
	}()
	vf(1000)
}

func TestSynthTableShape(t *testing.T) {
	s := SD805()
	st, ok := s.Voltages.(StaticTable)
	if !ok {
		t.Fatal("SD-805 scheme is not a static table")
	}
	if st.Table.Bins() != 7 {
		t.Errorf("SD-805 bins = %d", st.Table.Bins())
	}
	// Bin monotonicity is enforced by construction; spot-check the spread.
	v0, _ := st.Table.Voltage(0, 2649)
	v6, _ := st.Table.Voltage(6, 2649)
	spreadMV := v0.Millivolts() - v6.Millivolts()
	if spreadMV < 60 || spreadMV > 200 {
		t.Errorf("bin voltage spread = %v mV, want the ~100 mV of Table I", spreadMV)
	}
}

func TestLGG5VoltageThrottleConfig(t *testing.T) {
	g5 := LGG5()
	vt := g5.VoltageThrottle
	if vt == nil {
		t.Fatal("LG G5 must have an input-voltage throttle")
	}
	if vt.Threshold <= g5.Battery.Nominal {
		t.Errorf("threshold %v must sit above the nominal %v for the paper's anomaly to fire",
			vt.Threshold, g5.Battery.Nominal)
	}
	if vt.Threshold >= g5.Battery.Maximum {
		t.Errorf("threshold %v must sit below the 4.4 V max so the fix works", vt.Threshold)
	}
	// The cap costs ≈20% of top frequency (paper: "throttled by ≈20%").
	drop := 1 - float64(vt.CapFreq)/float64(g5.SoC.Big.MaxFreq())
	if drop < 0.12 || drop > 0.28 {
		t.Errorf("voltage-throttle frequency drop = %.0f%%, want ≈20%%", drop*100)
	}
	// No other handset has one.
	for _, m := range Models() {
		if m.Name != "LG G5" && m.VoltageThrottle != nil {
			t.Errorf("%s unexpectedly has a voltage throttle", m.Name)
		}
	}
}

func TestOnlyNexus5ShedsCores(t *testing.T) {
	for _, m := range Models() {
		hasShed := m.Thermal.CoreOfflineAt != 0
		if (m.Name == "Nexus 5") != hasShed {
			t.Errorf("%s core-shutdown config wrong (CoreOfflineAt=%v)", m.Name, m.Thermal.CoreOfflineAt)
		}
	}
	n5 := Nexus5()
	if n5.Thermal.CoreOfflineAt != 80 {
		t.Errorf("Nexus 5 sheds at %v, paper says 80°C", n5.Thermal.CoreOfflineAt)
	}
}

func TestFixedFreqDoesNotThrottle(t *testing.T) {
	// The FIXED-FREQUENCY operating point must be "guaranteed to not
	// thermally throttle": steady-state die temperature at that OPP stays
	// below the throttle trip for a typical chip at the paper's 26°C ambient.
	for _, m := range Models() {
		corner := silicon.ProcessCorner{Bin: silicon.Bin(m.SoC.Bins / 2), Leakage: 1}
		v, err := m.SoC.Voltages.Voltage(corner, m.FixedFreq, 60)
		if err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		// Upper-bound the power: dynamic at the fixed OPP plus generous leak.
		dyn := float64(m.SoC.Big.Ceff) * float64(v) * float64(v) * m.FixedFreq.Hertz() * float64(m.SoC.Big.Cores)
		if m.SoC.Little != nil {
			dyn += float64(m.SoC.Little.Ceff) * float64(v) * float64(v) * m.FixedFreq.Hertz() * float64(m.SoC.Little.Cores)
		}
		leak := float64(m.SoC.Leakage.Power(1.5, v, 70))
		p := units.Watts(dyn + leak + float64(m.SoC.Uncore))
		die := m.Body.SteadyStateDie(26, p)
		if die >= m.Thermal.ThrottleAt {
			t.Errorf("%s: fixed-freq steady die %v reaches throttle %v (power %v)",
				m.Name, die, m.Thermal.ThrottleAt, p)
		}
	}
}

func TestUnconstrainedMaxPowerThrottles(t *testing.T) {
	// Conversely, every model at its top OPP must exceed its sustainable
	// power — the paper's UNCONSTRAINED workload throttles on all devices.
	for _, m := range Models() {
		corner := silicon.ProcessCorner{Bin: 0, Leakage: 1}
		f := m.SoC.Big.MaxFreq()
		v, err := m.SoC.Voltages.Voltage(corner, f, 80)
		if err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		dyn := float64(m.SoC.Big.Ceff) * float64(v) * float64(v) * f.Hertz() * float64(m.SoC.Big.Cores)
		leak := float64(m.SoC.Leakage.Power(1.0, v, 80))
		p := units.Watts(dyn + leak + float64(m.SoC.Uncore))
		die := m.Body.SteadyStateDie(26, p)
		if die <= m.Thermal.ThrottleAt {
			t.Errorf("%s: max-freq steady die %v never reaches throttle %v — UNCONSTRAINED would not throttle",
				m.Name, die, m.Thermal.ThrottleAt)
		}
	}
}

func TestClusterValidation(t *testing.T) {
	good := Cluster{Name: "x", Cores: 4, OPPs: []units.MegaHertz{100, 200}, Ceff: 1e-9, CyclesPerIteration: 1e9}
	if err := good.Validate(); err != nil {
		t.Errorf("good cluster rejected: %v", err)
	}
	bad := []Cluster{
		{Name: "cores", Cores: 0, OPPs: good.OPPs, Ceff: 1e-9, CyclesPerIteration: 1e9},
		{Name: "opps", Cores: 4, OPPs: nil, Ceff: 1e-9, CyclesPerIteration: 1e9},
		{Name: "order", Cores: 4, OPPs: []units.MegaHertz{200, 100}, Ceff: 1e-9, CyclesPerIteration: 1e9},
		{Name: "ceff", Cores: 4, OPPs: good.OPPs, Ceff: 0, CyclesPerIteration: 1e9},
		{Name: "cycles", Cores: 4, OPPs: good.OPPs, Ceff: 1e-9, CyclesPerIteration: 0},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("cluster %q accepted", c.Name)
		}
	}
}

func TestDeviceModelValidation(t *testing.T) {
	m := Nexus5()
	m.FixedFreq = 1000 // not an OPP
	if err := m.Validate(); err == nil {
		t.Error("off-ladder FixedFreq accepted")
	}
	m2 := Nexus5()
	m2.Thermal.ThrottleAt = 0
	if err := m2.Validate(); err == nil {
		t.Error("missing throttle point accepted")
	}
	m3 := Nexus5()
	m3.SoC = nil
	if err := m3.Validate(); err == nil {
		t.Error("missing SoC accepted")
	}
}

func TestIterationsPerSecondZeroGuard(t *testing.T) {
	c := Cluster{CyclesPerIteration: 0}
	if got := c.IterationsPerSecond(1000); got != 0 {
		t.Errorf("IterationsPerSecond with zero cycles = %v", got)
	}
}
