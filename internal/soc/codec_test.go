package soc

import (
	"bytes"
	"strings"
	"testing"

	"accubench/internal/silicon"
)

func TestSaveLoadRoundTripAllModels(t *testing.T) {
	for _, m := range Models() {
		var buf bytes.Buffer
		if err := SaveModel(&buf, m); err != nil {
			t.Fatalf("%s: save: %v", m.Name, err)
		}
		back, err := LoadModel(&buf)
		if err != nil {
			t.Fatalf("%s: load: %v", m.Name, err)
		}
		if back.Name != m.Name || back.SoC.Name != m.SoC.Name {
			t.Errorf("%s: identity changed to %s/%s", m.Name, back.Name, back.SoC.Name)
		}
		if back.SoC.Big.Cores != m.SoC.Big.Cores || len(back.SoC.Big.OPPs) != len(m.SoC.Big.OPPs) {
			t.Errorf("%s: big cluster changed", m.Name)
		}
		if (back.SoC.Little == nil) != (m.SoC.Little == nil) {
			t.Errorf("%s: LITTLE presence changed", m.Name)
		}
		if back.Thermal != m.Thermal {
			t.Errorf("%s: thermal policy changed: %+v vs %+v", m.Name, back.Thermal, m.Thermal)
		}
		if back.Battery != m.Battery {
			t.Errorf("%s: battery changed", m.Name)
		}
		if back.FixedFreq != m.FixedFreq || back.SensorNoise != m.SensorNoise {
			t.Errorf("%s: run parameters changed", m.Name)
		}
		if (back.VoltageThrottle == nil) != (m.VoltageThrottle == nil) {
			t.Errorf("%s: voltage throttle presence changed", m.Name)
		}
		// Voltage schemes resolve identically after the round trip.
		corner := silicon.ProcessCorner{Bin: 0, Leakage: 1.2}
		for _, f := range m.SoC.Big.OPPs {
			want, err1 := m.SoC.Voltages.Voltage(corner, f, 55)
			got, err2 := back.SoC.Voltages.Voltage(corner, f, 55)
			if err1 != nil || err2 != nil {
				t.Fatalf("%s: voltage resolution: %v / %v", m.Name, err1, err2)
			}
			if want != got {
				t.Errorf("%s @%v: voltage %v != %v after round trip", m.Name, f, got, want)
			}
		}
	}
}

func TestLoadedModelValidates(t *testing.T) {
	var buf bytes.Buffer
	if err := SaveModel(&buf, Nexus5()); err != nil {
		t.Fatal(err)
	}
	m, err := LoadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(); err != nil {
		t.Errorf("loaded model invalid: %v", err)
	}
}

func TestLoadRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"not json":       "{nope",
		"unknown field":  `{"name":"x","bogus":1}`,
		"unknown scheme": `{"name":"x","soc":{"name":"s","big":{"name":"b","cores":4,"opps_mhz":[100],"ceff_nf":1,"cycles_per_iteration":1},"leakage":{"i0_a":1,"vref_v":1,"volt_exp":2,"tref_c":25,"tslope_c":30},"uncore_w":0.1,"voltages":{"type":"magic"},"bins":1},"body":{"die_capacitance_j_c":3,"case_capacitance_j_c":80,"die_to_case_w_c":0.14,"case_to_ambient_w_c":0.33},"battery":{"capacity_mah":2300,"nominal_v":3.8,"maximum_v":4.35,"internal_ohms":0.1},"thermal":{"throttle_at_c":79,"hysteresis_c":6},"fixed_freq_mhz":100,"sensor_noise_c":0.3}`,
	}
	for name, payload := range cases {
		if _, err := LoadModel(strings.NewReader(payload)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestLoadRejectsSemanticallyInvalid(t *testing.T) {
	// Serialize a good model, corrupt the fixed frequency off-ladder, and
	// ensure LoadModel's validation catches it.
	var buf bytes.Buffer
	if err := SaveModel(&buf, Nexus5()); err != nil {
		t.Fatal(err)
	}
	payload := strings.Replace(buf.String(), `"fixed_freq_mhz": 960`, `"fixed_freq_mhz": 961`, 1)
	if payload == buf.String() {
		t.Fatal("test fixture: fixed_freq_mhz not found in payload")
	}
	if _, err := LoadModel(strings.NewReader(payload)); err == nil {
		t.Error("off-ladder fixed frequency accepted")
	}
}

func TestSaveRejectsInvalidModel(t *testing.T) {
	m := Nexus5()
	m.Thermal.ThrottleAt = 0
	var buf bytes.Buffer
	if err := SaveModel(&buf, m); err == nil {
		t.Error("invalid model serialized")
	}
}

func TestLoadedModelRunsEndToEnd(t *testing.T) {
	// The point of the codec: a JSON-defined handset is a first-class
	// citizen. Round-trip the LG G5 (exercising RBCPR + voltage throttle)
	// and check the scheme still trims leaky chips.
	var buf bytes.Buffer
	if err := SaveModel(&buf, LGG5()); err != nil {
		t.Fatal(err)
	}
	m, err := LoadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	quiet, _ := m.SoC.Voltages.Voltage(silicon.ProcessCorner{Leakage: 0.7}, 2150, 50)
	leaky, _ := m.SoC.Voltages.Voltage(silicon.ProcessCorner{Leakage: 1.6}, 2150, 50)
	if leaky >= quiet {
		t.Errorf("RBCPR trim lost in round trip: %v vs %v", leaky, quiet)
	}
	if m.VoltageThrottle == nil || m.VoltageThrottle.Threshold != LGG5().VoltageThrottle.Threshold {
		t.Error("voltage throttle lost in round trip")
	}
}
