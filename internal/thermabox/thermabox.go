// Package thermabox simulates the paper's controlled thermal environment:
// an insulated chamber whose air temperature a RaspberryPi controller holds
// at 26 ± 0.5 °C by power-cycling a heating element and a compressor, with
// an ESP-8266 + thermistor probe as the feedback sensor (paper Fig. 3).
//
// The simulation reproduces the control problem, not just the setpoint: the
// chamber exchanges heat with the room, absorbs the device-under-test's
// dissipation (a phone at full tilt dumps several watts into the box), and
// the bang-bang controller acts on a *noisy* probe — so the regulated
// ambient genuinely wanders inside the band, which is one of the variance
// sources ACCUBENCH's repeatability numbers absorb.
package thermabox

import (
	"fmt"
	"time"

	"accubench/internal/sim"
	"accubench/internal/trace"
	"accubench/internal/units"
)

// Config describes the chamber hardware and control policy.
type Config struct {
	// Target is the setpoint (26 °C in all the paper's experiments).
	Target units.Celsius
	// Band is the tolerance the paper reports (±0.5 °C).
	Band float64
	// Room is the lab temperature outside the chamber.
	Room units.Celsius
	// AirCapacitance is the thermal capacitance of the chamber air + walls
	// in J/°C.
	AirCapacitance float64
	// LossConductance is the chamber-to-room conductance in W/°C
	// (insulation quality).
	LossConductance float64
	// HeaterPower is the heating element's output when on (the paper's
	// halogen lamp: 250 W).
	HeaterPower units.Watts
	// CompressorPower is the heat-removal rate of the compressor when on.
	CompressorPower units.Watts
	// ProbeNoise is the 1σ thermistor noise in °C.
	ProbeNoise float64
	// PollInterval is how often the controller acts.
	PollInterval time.Duration
	// Seed drives the probe-noise stream.
	Seed int64
}

// DefaultConfig returns the paper's chamber: 26 ± 0.5 °C in a 22 °C room
// with a 250 W lamp.
func DefaultConfig() Config {
	return Config{
		Target:          26,
		Band:            0.5,
		Room:            22,
		AirCapacitance:  6000,
		LossConductance: 3.0,
		HeaterPower:     250,
		CompressorPower: 300,
		ProbeNoise:      0.05,
		PollInterval:    time.Second,
		Seed:            1,
	}
}

// Box is the simulated chamber with its controller.
type Box struct {
	cfg Config

	air      units.Celsius
	heaterOn bool
	coolerOn bool

	noise    *sim.Source
	nextPoll time.Duration
	elapsed  time.Duration

	rec *trace.Recorder
}

// New builds a chamber whose air starts at room temperature (the controller
// must pull it to target, as the physical box does after power-on).
func New(cfg Config) (*Box, error) {
	if cfg.Band <= 0 {
		return nil, fmt.Errorf("thermabox: non-positive band %v", cfg.Band)
	}
	if cfg.AirCapacitance <= 0 || cfg.LossConductance <= 0 {
		return nil, fmt.Errorf("thermabox: non-physical chamber (C=%v, G=%v)", cfg.AirCapacitance, cfg.LossConductance)
	}
	if cfg.HeaterPower <= 0 || cfg.CompressorPower <= 0 {
		return nil, fmt.Errorf("thermabox: actuators must have positive power")
	}
	if cfg.PollInterval <= 0 {
		return nil, fmt.Errorf("thermabox: non-positive poll interval %v", cfg.PollInterval)
	}
	return &Box{
		cfg:   cfg,
		air:   cfg.Room,
		noise: sim.NewSource(cfg.Seed, "thermabox-probe"),
		rec:   trace.NewRecorder(),
	}, nil
}

// Air returns the true chamber air temperature.
func (b *Box) Air() units.Celsius { return b.air }

// Probe returns the thermistor reading: truth plus sensor noise.
func (b *Box) Probe() units.Celsius {
	return units.Celsius(float64(b.air) + b.noise.Normal(0, b.cfg.ProbeNoise))
}

// Target returns the setpoint.
func (b *Box) Target() units.Celsius { return b.cfg.Target }

// SetTarget moves the setpoint (the ambient-sweep experiment of Fig. 2 does
// this between runs).
func (b *Box) SetTarget(t units.Celsius) { b.cfg.Target = t }

// WithinBand reports whether the probe currently reads inside target ± band.
// The paper's app "first communicates with the THERMABOX and confirms that
// it is within the target temperature range" before starting iterations.
func (b *Box) WithinBand() bool {
	d := b.Probe().Delta(b.cfg.Target)
	return d >= -b.cfg.Band && d <= b.cfg.Band
}

// HeaterOn reports the heating element's state.
func (b *Box) HeaterOn() bool { return b.heaterOn }

// CompressorOn reports the compressor's state.
func (b *Box) CompressorOn() bool { return b.coolerOn }

// Trace returns the chamber recorder. Series: "air" (°C), "heater" (0/1),
// "compressor" (0/1).
func (b *Box) Trace() *trace.Recorder { return b.rec }

// Step advances the chamber by dt with the device inside dissipating
// deviceHeat into the air. The controller acts at its poll cadence; the
// physics integrate every call.
func (b *Box) Step(dt time.Duration, deviceHeat units.Watts) {
	if dt <= 0 {
		return
	}
	b.elapsed += dt

	// Bang-bang control on the noisy probe with a dead band of half the
	// tolerance, so actuation settles well inside ±Band.
	if b.elapsed >= b.nextPoll {
		b.nextPoll = b.elapsed + b.cfg.PollInterval
		read := b.Probe()
		dead := b.cfg.Band / 2
		switch {
		case read.Delta(b.cfg.Target) > dead:
			b.coolerOn = true
			b.heaterOn = false
		case read.Delta(b.cfg.Target) < -dead:
			b.heaterOn = true
			b.coolerOn = false
		default:
			b.heaterOn = false
			b.coolerOn = false
		}
	}

	// Physics: heater + device heat in, compressor + losses out.
	var p float64
	if b.heaterOn {
		p += float64(b.cfg.HeaterPower)
	}
	if b.coolerOn {
		p -= float64(b.cfg.CompressorPower)
	}
	p += float64(deviceHeat)
	p -= b.cfg.LossConductance * b.air.Delta(b.cfg.Room)
	b.air += units.Celsius(p * dt.Seconds() / b.cfg.AirCapacitance)

	b.rec.Series("air", "C").Append(b.elapsed, float64(b.air))
	b.rec.Series("heater", "on").Append(b.elapsed, boolTo01(b.heaterOn))
	b.rec.Series("compressor", "on").Append(b.elapsed, boolTo01(b.coolerOn))
}

func boolTo01(v bool) float64 {
	if v {
		return 1
	}
	return 0
}

// Stabilize runs the chamber with no device load until the probe has stayed
// inside the band for the given hold duration, or until maxWait elapses. It
// returns the time spent and whether stabilization succeeded — the
// power-on sequence the paper's harness performs before each device.
func (b *Box) Stabilize(hold, maxWait, step time.Duration) (time.Duration, bool) {
	if step <= 0 {
		step = 500 * time.Millisecond
	}
	var inBand time.Duration
	var spent time.Duration
	for spent < maxWait {
		b.Step(step, 0)
		spent += step
		if b.WithinBand() {
			inBand += step
			if inBand >= hold {
				return spent, true
			}
		} else {
			inBand = 0
		}
	}
	return spent, false
}
