package thermabox

import (
	"math"
	"testing"
	"time"

	"accubench/internal/stats"
	"accubench/internal/units"
)

func newBox(t *testing.T) *Box {
	t.Helper()
	b, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestConfigValidation(t *testing.T) {
	mutations := []func(*Config){
		func(c *Config) { c.Band = 0 },
		func(c *Config) { c.AirCapacitance = 0 },
		func(c *Config) { c.LossConductance = -1 },
		func(c *Config) { c.HeaterPower = 0 },
		func(c *Config) { c.CompressorPower = 0 },
		func(c *Config) { c.PollInterval = 0 },
	}
	for i, mut := range mutations {
		cfg := DefaultConfig()
		mut(&cfg)
		if _, err := New(cfg); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestStartsAtRoomTemperature(t *testing.T) {
	b := newBox(t)
	if b.Air() != 22 {
		t.Errorf("initial air = %v, want room 22", b.Air())
	}
}

func TestStabilizeReachesBand(t *testing.T) {
	b := newBox(t)
	spent, ok := b.Stabilize(30*time.Second, 30*time.Minute, time.Second)
	if !ok {
		t.Fatalf("chamber failed to stabilize in %v (air %v)", spent, b.Air())
	}
	if !b.WithinBand() {
		t.Errorf("not in band after Stabilize: %v", b.Air())
	}
}

func TestHoldsPaperTolerance(t *testing.T) {
	// The paper's claim: "the temperature inside the THERMABOX always
	// stayed within ±0.5°C of this target". After stabilization, run an
	// hour with a device dissipating a realistic varying load and assert
	// the true air temperature never leaves 26±0.5.
	b := newBox(t)
	if _, ok := b.Stabilize(30*time.Second, 30*time.Minute, time.Second); !ok {
		t.Fatal("stabilization failed")
	}
	var minT, maxT = 100.0, -100.0
	for i := 0; i < 3600; i++ {
		// Phone-like load: 3 min of ~8 W bursts, then idle, repeating.
		var load units.Watts
		if (i/180)%2 == 0 {
			load = 8
		} else {
			load = 0.3
		}
		b.Step(time.Second, load)
		a := float64(b.Air())
		minT = math.Min(minT, a)
		maxT = math.Max(maxT, a)
	}
	if minT < 25.5 || maxT > 26.5 {
		t.Errorf("air ranged [%.2f, %.2f], want within [25.5, 26.5]", minT, maxT)
	}
}

func TestActuatorsAlternate(t *testing.T) {
	b := newBox(t)
	b.Stabilize(30*time.Second, 30*time.Minute, time.Second)
	heater, cooler := 0, 0
	for i := 0; i < 1800; i++ {
		b.Step(time.Second, 5)
		if b.HeaterOn() {
			heater++
		}
		if b.CompressorOn() {
			cooler++
		}
		if b.HeaterOn() && b.CompressorOn() {
			t.Fatal("heater and compressor on simultaneously")
		}
	}
	// Target 26 °C in a 22 °C room: the heater holds the box up against
	// losses (the 5 W device alone cannot), so the heater must duty-cycle.
	if heater == 0 {
		t.Error("heater never engaged holding 26°C in a 22°C room")
	}
	_ = cooler // compressor only engages on overshoot here; see hot-room test
}

func TestCompressorEngagesInHotRoom(t *testing.T) {
	// With the room above the setpoint, regulation flips: the compressor
	// must do the work.
	cfg := DefaultConfig()
	cfg.Room = 32
	b, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := b.Stabilize(30*time.Second, 30*time.Minute, time.Second); !ok {
		t.Fatalf("failed to pull a hot room down to 26: air %v", b.Air())
	}
	cooler := 0
	for i := 0; i < 1800; i++ {
		b.Step(time.Second, 5)
		if b.CompressorOn() {
			cooler++
		}
	}
	if cooler == 0 {
		t.Error("compressor never engaged in a 32°C room")
	}
}

func TestSetTargetMovesEquilibrium(t *testing.T) {
	b := newBox(t)
	b.Stabilize(30*time.Second, 30*time.Minute, time.Second)
	b.SetTarget(35)
	if b.Target() != 35 {
		t.Fatalf("Target = %v", b.Target())
	}
	// Give the lamp time to heat 13°C above room.
	for i := 0; i < 3600; i++ {
		b.Step(time.Second, 0)
	}
	if math.Abs(b.Air().Delta(35)) > 0.5 {
		t.Errorf("air = %v after retarget to 35", b.Air())
	}
}

func TestProbeNoisy(t *testing.T) {
	b := newBox(t)
	reads := make([]float64, 200)
	for i := range reads {
		reads[i] = float64(b.Probe())
	}
	if stats.StdDev(reads) == 0 {
		t.Error("probe has no noise")
	}
	if stats.StdDev(reads) > 0.2 {
		t.Errorf("probe noise %v implausibly large", stats.StdDev(reads))
	}
	if math.Abs(stats.Mean(reads)-22) > 0.05 {
		t.Errorf("probe mean %v, want ≈22", stats.Mean(reads))
	}
}

func TestWithinBand(t *testing.T) {
	b := newBox(t)
	// At room 22 with target 26, definitely out of band.
	if b.WithinBand() {
		t.Error("cold chamber claims to be in band")
	}
}

func TestTraceRecorded(t *testing.T) {
	b := newBox(t)
	for i := 0; i < 10; i++ {
		b.Step(time.Second, 0)
	}
	for _, name := range []string{"air", "heater", "compressor"} {
		s, ok := b.Trace().Lookup(name)
		if !ok || s.Len() != 10 {
			t.Errorf("series %q missing or wrong length", name)
		}
	}
}

func TestZeroStepIgnored(t *testing.T) {
	b := newBox(t)
	before := b.Air()
	b.Step(0, 100)
	if b.Air() != before {
		t.Error("zero step changed state")
	}
}

func TestStabilizeTimeout(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Room = 60 // absurd: compressor can't reach 26±0.5 hold within a short budget
	cfg.CompressorPower = 1
	b, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := b.Stabilize(time.Minute, 2*time.Minute, time.Second); ok {
		t.Error("impossible chamber claimed to stabilize")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() units.Celsius {
		b, err := New(DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		b.Stabilize(30*time.Second, 10*time.Minute, time.Second)
		for i := 0; i < 600; i++ {
			b.Step(time.Second, 4)
		}
		return b.Air()
	}
	if a, b := run(), run(); a != b {
		t.Errorf("same seed diverged: %v vs %v", a, b)
	}
}
