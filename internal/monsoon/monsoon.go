// Package monsoon simulates the Monsoon Power Monitor the paper uses to
// power every device under test and to measure its energy consumption. The
// real instrument replaces the battery with a regulated main channel and
// samples current at 5 kHz; energy is the integral of V·I over the
// measurement window.
//
// The simulated monitor wraps a battery.BenchSupply, records current samples
// as the device draws power, and integrates energy with the trapezoidal rule
// between samples — the same pipeline, minus the physical leads.
package monsoon

import (
	"fmt"
	"time"

	"accubench/internal/battery"
	"accubench/internal/units"
)

// DefaultSampleRate matches the physical Monsoon's 5 kHz channel. The
// simulator typically samples at the simulation step instead; the constant
// documents provenance.
const DefaultSampleRate = 5000 // Hz

// Monitor is a simulated Monsoon power monitor.
type Monitor struct {
	supply *battery.BenchSupply

	measuring bool
	start     time.Duration
	lastAt    time.Duration
	lastP     units.Watts
	energy    units.Joules
	samples   int
	peak      units.Watts
}

// New returns a monitor whose main channel is configured at the given
// voltage. The paper configures "the nominal voltage for each device as
// specified by the manufacturer" — and discovers with the LG G5 that the
// choice matters.
func New(mainVoltage units.Volts) *Monitor {
	return &Monitor{supply: battery.NewBenchSupply(mainVoltage)}
}

// Supply exposes the monitor's output as a power source for a device.
func (m *Monitor) Supply() battery.Source { return m.supply }

// SetVoltage reconfigures the main channel (Fig. 10 sweeps this from the
// battery's nominal 3.85 V to its 4.4 V maximum). Reconfiguring during a
// measurement is a harness bug and panics.
func (m *Monitor) SetVoltage(v units.Volts) {
	if m.measuring {
		panic("monsoon: SetVoltage during an active measurement")
	}
	m.supply.Setpoint = v
}

// Voltage returns the configured main-channel voltage.
func (m *Monitor) Voltage() units.Volts { return m.supply.Setpoint }

// StartMeasurement begins an energy integration window at the given
// simulated time. Any previous measurement state is discarded.
func (m *Monitor) StartMeasurement(at time.Duration) {
	m.measuring = true
	m.start = at
	m.lastAt = at
	m.lastP = 0
	m.energy = 0
	m.samples = 0
	m.peak = 0
}

// Sample records the device's instantaneous power draw at the given
// simulated time. Samples must be fed in non-decreasing time order; the
// monitor integrates trapezoidally between consecutive samples. Sampling
// while no measurement is active still powers the device (the supply always
// delivers) but records nothing.
func (m *Monitor) Sample(at time.Duration, p units.Watts) error {
	if p < 0 {
		return fmt.Errorf("monsoon: negative power sample %v", p)
	}
	if !m.measuring {
		return nil
	}
	if at < m.lastAt {
		return fmt.Errorf("monsoon: sample at %v precedes previous sample at %v", at, m.lastAt)
	}
	dt := (at - m.lastAt).Seconds()
	inc := units.Joules((float64(m.lastP) + float64(p)) / 2 * dt)
	m.energy += inc
	m.supply.Drain(inc)
	m.lastAt = at
	m.lastP = p
	m.samples++
	if p > m.peak {
		m.peak = p
	}
	return nil
}

// Measurement is the result of one integration window.
type Measurement struct {
	// Energy is the integrated energy over the window.
	Energy units.Joules
	// Duration is the window length.
	Duration time.Duration
	// MeanPower is Energy/Duration.
	MeanPower units.Watts
	// PeakPower is the largest sample seen.
	PeakPower units.Watts
	// Samples is how many samples contributed.
	Samples int
	// MainVoltage is the channel voltage during the window.
	MainVoltage units.Volts
}

// String renders e.g. "512.3J over 5m0s (mean 1707.7mW, peak 3120.0mW)".
func (r Measurement) String() string {
	return fmt.Sprintf("%v over %v (mean %v, peak %v)", r.Energy, r.Duration, r.MeanPower, r.PeakPower)
}

// StopMeasurement closes the window at the given simulated time and returns
// the measurement. It returns an error if no measurement was active.
func (m *Monitor) StopMeasurement(at time.Duration) (Measurement, error) {
	if !m.measuring {
		return Measurement{}, fmt.Errorf("monsoon: StopMeasurement without StartMeasurement")
	}
	if at < m.lastAt {
		return Measurement{}, fmt.Errorf("monsoon: stop time %v precedes last sample %v", at, m.lastAt)
	}
	// Hold the last power level to the stop instant.
	if at > m.lastAt {
		m.energy += units.Joules(float64(m.lastP) * (at - m.lastAt).Seconds())
	}
	m.measuring = false
	dur := at - m.start
	mean := units.Watts(0)
	if dur > 0 {
		mean = units.Watts(float64(m.energy) / dur.Seconds())
	}
	return Measurement{
		Energy:      m.energy,
		Duration:    dur,
		MeanPower:   mean,
		PeakPower:   m.peak,
		Samples:     m.samples,
		MainVoltage: m.supply.Setpoint,
	}, nil
}

// Measuring reports whether a window is open.
func (m *Monitor) Measuring() bool { return m.measuring }
