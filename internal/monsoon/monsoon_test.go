package monsoon

import (
	"math"
	"strings"
	"testing"
	"time"

	"accubench/internal/units"
)

func TestConstantPowerIntegration(t *testing.T) {
	m := New(3.85)
	m.StartMeasurement(0)
	// 2 W held for 10 s, sampled every second.
	if err := m.Sample(0, 2); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 10; i++ {
		if err := m.Sample(time.Duration(i)*time.Second, 2); err != nil {
			t.Fatal(err)
		}
	}
	res, err := m.StopMeasurement(10 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(res.Energy)-20) > 1e-9 {
		t.Errorf("Energy = %v, want 20J", res.Energy)
	}
	if math.Abs(float64(res.MeanPower)-2) > 1e-9 {
		t.Errorf("MeanPower = %v, want 2W", res.MeanPower)
	}
	if res.PeakPower != 2 {
		t.Errorf("PeakPower = %v", res.PeakPower)
	}
	if res.Duration != 10*time.Second {
		t.Errorf("Duration = %v", res.Duration)
	}
	if res.Samples != 11 {
		t.Errorf("Samples = %d", res.Samples)
	}
	if res.MainVoltage != 3.85 {
		t.Errorf("MainVoltage = %v", res.MainVoltage)
	}
}

func TestTrapezoidalRamp(t *testing.T) {
	// Power ramps linearly 0→4 W over 4 s: energy is the triangle area 8 J.
	m := New(4.0)
	m.StartMeasurement(0)
	for i := 0; i <= 4; i++ {
		if err := m.Sample(time.Duration(i)*time.Second, units.Watts(i)); err != nil {
			t.Fatal(err)
		}
	}
	res, err := m.StopMeasurement(4 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(res.Energy)-8) > 1e-9 {
		t.Errorf("Energy = %v, want 8J", res.Energy)
	}
	if res.PeakPower != 4 {
		t.Errorf("PeakPower = %v", res.PeakPower)
	}
}

func TestHoldToStopInstant(t *testing.T) {
	// Last sample at t=1s of 3 W, stop at t=3s: the final 2 s hold 3 W.
	m := New(4.0)
	m.StartMeasurement(0)
	m.Sample(0, 3)
	m.Sample(time.Second, 3)
	res, err := m.StopMeasurement(3 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(res.Energy)-9) > 1e-9 {
		t.Errorf("Energy = %v, want 9J", res.Energy)
	}
}

func TestSamplesOutsideMeasurementIgnored(t *testing.T) {
	m := New(3.85)
	if err := m.Sample(0, 5); err != nil {
		t.Fatal(err)
	}
	m.StartMeasurement(time.Second)
	m.Sample(time.Second, 1)
	m.Sample(2*time.Second, 1)
	res, err := m.StopMeasurement(2 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(res.Energy)-1) > 1e-9 {
		t.Errorf("Energy = %v, want 1J (pre-measurement sample must not count)", res.Energy)
	}
}

func TestErrors(t *testing.T) {
	m := New(3.85)
	if _, err := m.StopMeasurement(0); err == nil {
		t.Error("stop without start accepted")
	}
	m.StartMeasurement(time.Second)
	if err := m.Sample(0, 1); err == nil {
		t.Error("time-travelling sample accepted")
	}
	if err := m.Sample(2*time.Second, -1); err == nil {
		t.Error("negative power accepted")
	}
	if _, err := m.StopMeasurement(500 * time.Millisecond); err == nil {
		t.Error("stop before last sample accepted")
	}
}

func TestSetVoltage(t *testing.T) {
	m := New(3.85)
	m.SetVoltage(4.4)
	if m.Voltage() != 4.4 {
		t.Errorf("Voltage = %v", m.Voltage())
	}
	if m.Supply().Voltage(10) != 4.4 {
		t.Errorf("supply voltage = %v", m.Supply().Voltage(10))
	}
}

func TestSetVoltageDuringMeasurementPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("SetVoltage during measurement did not panic")
		}
	}()
	m := New(3.85)
	m.StartMeasurement(0)
	m.SetVoltage(4.4)
}

func TestMeasuringFlag(t *testing.T) {
	m := New(3.85)
	if m.Measuring() {
		t.Error("fresh monitor claims to be measuring")
	}
	m.StartMeasurement(0)
	if !m.Measuring() {
		t.Error("not measuring after start")
	}
	if _, err := m.StopMeasurement(time.Second); err != nil {
		t.Fatal(err)
	}
	if m.Measuring() {
		t.Error("still measuring after stop")
	}
}

func TestRestartDiscardsState(t *testing.T) {
	m := New(3.85)
	m.StartMeasurement(0)
	m.Sample(0, 10)
	m.Sample(time.Second, 10)
	m.StartMeasurement(2 * time.Second) // restart without stop
	m.Sample(2*time.Second, 1)
	m.Sample(3*time.Second, 1)
	res, err := m.StopMeasurement(3 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(res.Energy)-1) > 1e-9 {
		t.Errorf("Energy = %v, want 1J after restart", res.Energy)
	}
	if res.PeakPower != 1 {
		t.Errorf("PeakPower = %v, want 1 after restart", res.PeakPower)
	}
}

func TestZeroDurationWindow(t *testing.T) {
	m := New(3.85)
	m.StartMeasurement(time.Second)
	res, err := m.StopMeasurement(time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if res.Energy != 0 || res.MeanPower != 0 {
		t.Errorf("zero window = %+v", res)
	}
}

func TestMeasurementString(t *testing.T) {
	r := Measurement{Energy: 512.3, Duration: 5 * time.Minute, MeanPower: 1.7077, PeakPower: 3.12}
	if !strings.Contains(r.String(), "512.3J") {
		t.Errorf("String = %q", r.String())
	}
}

func TestSupplyDrainAccounting(t *testing.T) {
	m := New(3.85)
	m.StartMeasurement(0)
	m.Sample(0, 2)
	m.Sample(10*time.Second, 2)
	m.StopMeasurement(10 * time.Second)
	// The underlying supply must have delivered the same 20 J.
	type delivered interface{ EnergyDelivered() units.Joules }
	d, ok := m.Supply().(delivered)
	if !ok {
		t.Fatal("supply does not report delivered energy")
	}
	if math.Abs(float64(d.EnergyDelivered())-20) > 1e-9 {
		t.Errorf("supply delivered %v, want 20J", d.EnergyDelivered())
	}
}
