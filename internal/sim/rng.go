package sim

import (
	"hash/fnv"
	"math"
	"math/rand"
)

// Source is a deterministic random stream. Independent subsystems (sensor
// noise on one device, chamber dynamics, chip-lottery sampling) each derive
// their own Source from a root seed and a name, so adding a consumer of
// randomness in one subsystem never perturbs the draws seen by another —
// the simulation equivalent of the paper isolating sources of variance.
type Source struct {
	rng *rand.Rand
}

// NewSource derives a named stream from a root seed. The same (seed, name)
// pair always yields the same stream.
func NewSource(seed int64, name string) *Source {
	h := fnv.New64a()
	// fnv never fails on Write.
	h.Write([]byte(name))
	return &Source{rng: rand.New(rand.NewSource(seed ^ int64(h.Sum64())))}
}

// Float64 returns a uniform draw in [0,1).
func (s *Source) Float64() float64 { return s.rng.Float64() }

// Normal returns a Gaussian draw with the given mean and standard deviation.
func (s *Source) Normal(mean, stddev float64) float64 {
	return mean + stddev*s.rng.NormFloat64()
}

// Uniform returns a uniform draw in [lo, hi).
func (s *Source) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*s.rng.Float64()
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0, matching
// math/rand semantics.
func (s *Source) Intn(n int) int { return s.rng.Intn(n) }

// LogNormal returns a draw from a log-normal distribution whose underlying
// normal has the given mu and sigma. Process-variation corners are classically
// modelled as log-normal: multiplicative combinations of many small
// independent fabrication effects.
func (s *Source) LogNormal(mu, sigma float64) float64 {
	return math.Exp(s.Normal(mu, sigma))
}

// Perm returns a random permutation of [0, n).
func (s *Source) Perm(n int) []int { return s.rng.Perm(n) }
