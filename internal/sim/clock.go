// Package sim provides the discrete-time simulation backbone: an explicit
// simulation clock and deterministic, named random-number streams.
//
// Everything in the reproduction advances on simulated time, never wall-clock
// time, so a five-minute ACCUBENCH workload phase executes in milliseconds of
// host time and every run is bit-for-bit reproducible. The paper's
// methodology is all about controlling sources of variance; the simulation
// honours that by making time and randomness fully explicit.
package sim

import (
	"fmt"
	"time"
)

// Clock is a monotonically advancing simulated clock. The zero value starts
// at simulated time zero. Clock is not safe for concurrent use; the
// simulation loop is single-threaded by design so that results are
// deterministic.
type Clock struct {
	now time.Duration
}

// NewClock returns a clock positioned at simulated time zero.
func NewClock() *Clock { return &Clock{} }

// Now returns the current simulated time as an offset from the start of the
// simulation.
func (c *Clock) Now() time.Duration { return c.now }

// Advance moves the clock forward by dt. It panics on a negative dt: time
// travelling backwards always indicates a bug in the caller's stepping loop.
func (c *Clock) Advance(dt time.Duration) {
	if dt < 0 {
		panic(fmt.Sprintf("sim: Advance by negative duration %v", dt))
	}
	c.now += dt
}

// Stepper repeatedly advances the clock in fixed steps, invoking fn with the
// step size after each advance. It runs until total simulated time has
// elapsed or fn returns false. The final step is truncated so the clock
// lands exactly on the requested horizon. Stepper returns the simulated time
// actually consumed.
func (c *Clock) Stepper(total, step time.Duration, fn func(dt time.Duration) bool) time.Duration {
	if step <= 0 {
		panic(fmt.Sprintf("sim: non-positive step %v", step))
	}
	start := c.now
	end := c.now + total
	for c.now < end {
		dt := step
		if rem := end - c.now; rem < dt {
			dt = rem
		}
		c.Advance(dt)
		if !fn(dt) {
			break
		}
	}
	return c.now - start
}
