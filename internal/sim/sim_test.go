package sim

import (
	"math"
	"testing"
	"time"
)

func TestClockStartsAtZero(t *testing.T) {
	c := NewClock()
	if c.Now() != 0 {
		t.Errorf("new clock at %v, want 0", c.Now())
	}
}

func TestClockAdvance(t *testing.T) {
	c := NewClock()
	c.Advance(100 * time.Millisecond)
	c.Advance(400 * time.Millisecond)
	if c.Now() != 500*time.Millisecond {
		t.Errorf("clock at %v, want 500ms", c.Now())
	}
}

func TestClockAdvanceNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Advance(-1) did not panic")
		}
	}()
	NewClock().Advance(-time.Second)
}

func TestStepperExactHorizon(t *testing.T) {
	c := NewClock()
	var steps int
	var total time.Duration
	consumed := c.Stepper(time.Second, 300*time.Millisecond, func(dt time.Duration) bool {
		steps++
		total += dt
		return true
	})
	if consumed != time.Second {
		t.Errorf("consumed %v, want 1s", consumed)
	}
	if c.Now() != time.Second {
		t.Errorf("clock at %v, want exactly 1s (final step must truncate)", c.Now())
	}
	if steps != 4 { // 300+300+300+100
		t.Errorf("steps = %d, want 4", steps)
	}
	if total != time.Second {
		t.Errorf("sum of dt = %v, want 1s", total)
	}
}

func TestStepperEarlyStop(t *testing.T) {
	c := NewClock()
	var steps int
	c.Stepper(time.Second, 100*time.Millisecond, func(dt time.Duration) bool {
		steps++
		return steps < 3
	})
	if steps != 3 {
		t.Errorf("steps = %d, want 3", steps)
	}
	if c.Now() != 300*time.Millisecond {
		t.Errorf("clock at %v, want 300ms", c.Now())
	}
}

func TestStepperZeroStepPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Stepper with 0 step did not panic")
		}
	}()
	NewClock().Stepper(time.Second, 0, func(time.Duration) bool { return true })
}

func TestSourceDeterminism(t *testing.T) {
	a := NewSource(42, "sensor")
	b := NewSource(42, "sensor")
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatalf("same (seed,name) diverged at draw %d", i)
		}
	}
}

func TestSourceIndependentStreams(t *testing.T) {
	a := NewSource(42, "sensor")
	b := NewSource(42, "chamber")
	same := 0
	for i := 0; i < 100; i++ {
		if a.Float64() == b.Float64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("streams with different names produced %d/100 identical draws", same)
	}
}

func TestSourceSeedMatters(t *testing.T) {
	a := NewSource(1, "x")
	b := NewSource(2, "x")
	if a.Float64() == b.Float64() && a.Float64() == b.Float64() {
		t.Error("different seeds produced identical draws")
	}
}

func TestNormalMoments(t *testing.T) {
	s := NewSource(7, "normal")
	const n = 50000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		x := s.Normal(5, 2)
		sum += x
		sumsq += x * x
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean-5) > 0.05 {
		t.Errorf("sample mean %v, want ≈5", mean)
	}
	if math.Abs(math.Sqrt(variance)-2) > 0.05 {
		t.Errorf("sample stddev %v, want ≈2", math.Sqrt(variance))
	}
}

func TestUniformRange(t *testing.T) {
	s := NewSource(9, "uniform")
	for i := 0; i < 1000; i++ {
		x := s.Uniform(-3, 4)
		if x < -3 || x >= 4 {
			t.Fatalf("Uniform draw %v outside [-3,4)", x)
		}
	}
}

func TestLogNormalPositive(t *testing.T) {
	s := NewSource(11, "lognormal")
	for i := 0; i < 1000; i++ {
		if x := s.LogNormal(0, 0.5); x <= 0 {
			t.Fatalf("LogNormal draw %v not positive", x)
		}
	}
}

func TestLogNormalMedian(t *testing.T) {
	s := NewSource(13, "lognormal-median")
	const n = 20001
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = s.LogNormal(0, 0.3)
	}
	below := 0
	for _, x := range xs {
		if x < 1 {
			below++
		}
	}
	frac := float64(below) / n
	if math.Abs(frac-0.5) > 0.02 {
		t.Errorf("fraction below median exp(0)=1 is %v, want ≈0.5", frac)
	}
}

func TestPerm(t *testing.T) {
	s := NewSource(3, "perm")
	p := s.Perm(10)
	seen := make(map[int]bool)
	for _, v := range p {
		if v < 0 || v >= 10 || seen[v] {
			t.Fatalf("invalid permutation %v", p)
		}
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Fatalf("permutation %v missing elements", p)
	}
}
