package sim

import (
	"math"
	"testing"
)

// TestStreamDeterministic pins the derivation contract: the same
// (seed, name) pair replays the same sequence, and either coordinate
// changing decorrelates it.
func TestStreamDeterministic(t *testing.T) {
	a := NewStream(42, "sensor:fleet-0000001")
	b := NewStream(42, "sensor:fleet-0000001")
	for i := 0; i < 1000; i++ {
		if x, y := a.Normal(0, 1), b.Normal(0, 1); x != y {
			t.Fatalf("draw %d diverged: %v vs %v", i, x, y)
		}
	}
	c := NewStream(42, "sensor:fleet-0000002")
	d := NewStream(43, "sensor:fleet-0000001")
	base := NewStream(42, "sensor:fleet-0000001")
	sameName, sameSeed := 0, 0
	for i := 0; i < 100; i++ {
		x := base.Float64()
		if x == c.Float64() {
			sameName++
		}
		if x == d.Float64() {
			sameSeed++
		}
	}
	if sameName > 0 || sameSeed > 0 {
		t.Fatalf("streams not decorrelated: %d/%d collisions by name/seed", sameName, sameSeed)
	}
}

// TestStreamCopySemantics locks the value-type contract: copying a
// Stream forks the sequence at the copy point.
func TestStreamCopySemantics(t *testing.T) {
	s := NewStream(7, "fork")
	s.Normal(0, 1) // advance past the first polar pair
	fork := s
	for i := 0; i < 10; i++ {
		if x, y := s.Normal(0, 1), fork.Normal(0, 1); x != y {
			t.Fatalf("forked copy diverged at draw %d", i)
		}
	}
}

// TestStreamMoments sanity-checks the distributions: uniform mean/range
// and Gaussian mean/variance over a large sample.
func TestStreamMoments(t *testing.T) {
	s := NewStream(1, "moments")
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		x := s.Normal(0, 1)
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Errorf("normal mean %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Errorf("normal variance %v, want ~1", variance)
	}
	u := NewStream(1, "uniform")
	lo, hi := math.Inf(1), math.Inf(-1)
	sum = 0
	for i := 0; i < n; i++ {
		x := u.Uniform(12, 38)
		if x < 12 || x >= 38 {
			t.Fatalf("uniform draw %v outside [12,38)", x)
		}
		lo, hi = math.Min(lo, x), math.Max(hi, x)
		sum += x
	}
	if mean := sum / n; math.Abs(mean-25) > 0.1 {
		t.Errorf("uniform mean %v, want ~25", mean)
	}
	if lo > 12.1 || hi < 37.9 {
		t.Errorf("uniform range [%v,%v] does not span [12,38)", lo, hi)
	}
}

// TestStreamImplementsNoise pins the seam the device layer depends on.
func TestStreamImplementsNoise(t *testing.T) {
	var _ Noise = &Stream{}
	var _ Noise = &Source{}
}
