package sim

import (
	"hash/fnv"
	"math"
)

// Noise is the minimal random surface the device layer consumes: a
// Gaussian draw. Both *Source (the full math/rand-backed stream) and
// *Stream (the compact fleet-scale stream below) implement it, which is
// the seam that lets a single device.Device and its fleetsim
// counterpart consume the exact same draws in the bit-identity goldens.
type Noise interface {
	// Normal returns a Gaussian draw with the given mean and standard
	// deviation.
	Normal(mean, stddev float64) float64
}

// Stream is a compact deterministic random stream: 24 bytes of state
// against the ~5 KiB a math/rand-backed Source carries. A million-device
// fleet holds two Streams per device (sensor and util noise), so the
// whole fleet's randomness fits in tens of megabytes and stays cache-
// resident next to the rest of the struct-of-arrays state.
//
// The generator is splitmix64 (Steele, Lea & Flood; the seeding
// generator of java.util.SplittableRandom and xoshiro), which passes
// BigCrush and gives a full 2^64 period from any seed. Gaussian draws
// use the Marsaglia polar method with a cached spare, so consecutive
// Normal calls cost one transcendental pair per two draws.
//
// A Stream is a value type: copying it forks the sequence. Fleet code
// indexes []Stream in place; methods use pointer receivers so draws
// advance the addressed element.
type Stream struct {
	state uint64
	spare float64
	// hasSpare marks a banked second polar draw.
	hasSpare bool
}

// NewStream derives a named compact stream from a root seed, with the
// same (seed, name) derivation idiom as NewSource: the name is FNV-1a
// hashed and folded into the seed, so independently named streams are
// decorrelated and adding a consumer never perturbs another stream's
// draws. The same (seed, name) pair always yields the same stream. Note
// a Stream and a Source built from the same pair produce different
// sequences — they are different generators; what is shared is the
// derivation contract.
func NewStream(seed int64, name string) Stream {
	h := fnv.New64a()
	// fnv never fails on Write.
	h.Write([]byte(name))
	return Stream{state: uint64(seed ^ int64(h.Sum64()))}
}

// Uint64 returns the next 64 raw bits (splitmix64).
func (s *Stream) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform draw in [0,1) with 53 bits of precision.
func (s *Stream) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Uniform returns a uniform draw in [lo, hi).
func (s *Stream) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*s.Float64()
}

// Normal returns a Gaussian draw with the given mean and standard
// deviation (Marsaglia polar method, spare-cached).
func (s *Stream) Normal(mean, stddev float64) float64 {
	if s.hasSpare {
		s.hasSpare = false
		return mean + stddev*s.spare
	}
	for {
		u := 2*s.Float64() - 1
		v := 2*s.Float64() - 1
		q := u*u + v*v
		if q > 0 && q < 1 {
			m := math.Sqrt(-2 * math.Log(q) / q)
			s.spare = v * m
			s.hasSpare = true
			return mean + stddev*(u*m)
		}
	}
}

// LogNormal returns a draw whose logarithm is Normal(mu, sigma) — the
// same process-variation shape Source.LogNormal models.
func (s *Stream) LogNormal(mu, sigma float64) float64 {
	return math.Exp(s.Normal(mu, sigma))
}
