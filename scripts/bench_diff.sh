#!/bin/sh
# bench_diff.sh — re-run the headline benchmarks and fail if any
# regresses more than $BENCH_TOLERANCE_PCT (default 10) percent in
# ns/op against the committed baseline (BENCH_5.json, or $1). A new
# benchmark missing from the baseline is reported but not fatal;
# a baseline benchmark missing from the current run is fatal.
set -eu
cd "$(dirname "$0")/.."

base=${1:-BENCH_5.json}
tol=${BENCH_TOLERANCE_PCT:-10}

if [ ! -f "$base" ]; then
    echo "bench_diff: no baseline $base — run 'make bench' and commit it" >&2
    exit 1
fi

cur=$(mktemp)
trap 'rm -f "$cur"' EXIT
BENCH_OUT=$cur sh scripts/bench_run.sh >/dev/null

awk -v tol="$tol" '
function grab(line, key,    v) {
    if (match(line, "\"" key "\": [0-9.eE+-]+")) {
        v = substr(line, RSTART, RLENGTH)
        sub(".*: ", "", v)
        return v
    }
    return ""
}
{
    if (match($0, /"name": "[^"]*"/)) {
        name = substr($0, RSTART + 9, RLENGTH - 10)
        if (FNR == NR) base[name] = grab($0, "ns_per_op")
        else           cur[name]  = grab($0, "ns_per_op")
    }
}
END {
    fail = 0
    for (n in base) {
        if (!(n in cur)) {
            printf "bench_diff: %s in baseline but not in current run\n", n
            fail = 1
            continue
        }
        pct = (cur[n] / base[n] - 1) * 100
        if (pct > tol) {
            printf "bench_diff: %s regressed: %.6g ns/op vs baseline %.6g (%+.1f%% > %s%% tolerance)\n", \
                n, cur[n], base[n], pct, tol
            fail = 1
        } else {
            printf "bench_diff: %s ok: %.6g ns/op vs baseline %.6g (%+.1f%%)\n", \
                n, cur[n], base[n], pct
        }
    }
    for (n in cur) if (!(n in base)) \
        printf "bench_diff: %s is new (no baseline entry)\n", n
    exit fail
}
' "$base" "$cur"
