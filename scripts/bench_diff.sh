#!/bin/sh
# bench_diff.sh — compare benchmark results against a committed
# baseline and fail on regressions beyond $BENCH_TOLERANCE_PCT
# (default 10) percent.
#
#   bench_diff.sh [baseline] [current]
#
# With no arguments it re-runs the headline benchmarks (bench_run.sh)
# and compares ns/op against BENCH_5.json. Passing a current file as $2
# skips the re-run and compares the two files as-is — the chaos path:
#   bench_diff.sh BENCH_7.json /tmp/bench7-new.json
# Per-entry keys are compared direction-aware: ns_per_op and ack_p99_ms
# regress upward; submissions_per_sec, ratio_vs_json (the wire:JSON
# throughput ratio in BENCH_8.json must not shrink),
# devices_steps_per_sec (the fleet engine in BENCH_9.json must not slow
# down) and speedup_vs_exact (the sketch:exact bins-read ratio in
# BENCH_10.json must not shrink) regress downward. A new entry missing from the baseline is
# reported but not fatal; a baseline entry missing from the current run
# is fatal.
set -eu
cd "$(dirname "$0")/.."

base=${1:-BENCH_5.json}
tol=${BENCH_TOLERANCE_PCT:-10}

if [ ! -f "$base" ]; then
    echo "bench_diff: no baseline $base — run 'make bench' and commit it" >&2
    exit 1
fi

if [ $# -ge 2 ]; then
    cur=$2
    if [ ! -f "$cur" ]; then
        echo "bench_diff: no current file $cur" >&2
        exit 1
    fi
    trap '' EXIT
else
    cur=$(mktemp)
    trap 'rm -f "$cur"' EXIT
    BENCH_OUT=$cur sh scripts/bench_run.sh >/dev/null
fi

awk -v tol="$tol" '
function grab(line, key,    v) {
    if (match(line, "\"" key "\": [0-9.eE+-]+")) {
        v = substr(line, RSTART, RLENGTH)
        sub(".*: ", "", v)
        return v
    }
    return ""
}
# store every comparable key found on this entry line, keyed "name/key"
function store(tab, name, line,    k, i, v) {
    split("ns_per_op ack_p99_ms submissions_per_sec ratio_vs_json devices_steps_per_sec speedup_vs_exact", keys, " ")
    for (i in keys) {
        v = grab(line, keys[i])
        if (v != "") tab[name "/" keys[i]] = v
    }
}
{
    if (match($0, /"name": "[^"]*"/)) {
        name = substr($0, RSTART + 9, RLENGTH - 10)
        if (FNR == NR) { store(base, name, $0); seen_base[name] = 1 }
        else           { store(cur,  name, $0); seen_cur[name] = 1 }
    }
}
END {
    fail = 0
    for (nk in base) {
        split(nk, parts, "/"); n = parts[1]; key = parts[2]
        if (!(n in seen_cur)) {
            if (!(n in missing)) {
                printf "bench_diff: %s in baseline but not in current run\n", n
                missing[n] = 1
                fail = 1
            }
            continue
        }
        if (!(nk in cur)) continue
        # submissions_per_sec, ratio_vs_json, devices_steps_per_sec and
        # speedup_vs_exact regress when they drop; everything else
        # (ns_per_op, ack_p99_ms) regresses when it climbs.
        if (key == "submissions_per_sec" || key == "ratio_vs_json" || key == "devices_steps_per_sec" || key == "speedup_vs_exact") \
             pct = (base[nk] / cur[nk] - 1) * 100
        else pct = (cur[nk] / base[nk] - 1) * 100
        if (pct > tol) {
            printf "bench_diff: %s regressed: %.6g %s vs baseline %.6g (%+.1f%% worse > %s%% tolerance)\n", \
                n, cur[nk], key, base[nk], pct, tol
            fail = 1
        } else {
            printf "bench_diff: %s ok: %.6g %s vs baseline %.6g (%+.1f%% worse)\n", \
                n, cur[nk], key, base[nk], pct
        }
    }
    for (n in seen_cur) if (!(n in seen_base)) \
        printf "bench_diff: %s is new (no baseline entry)\n", n
    exit fail
}
' "$base" "$cur"
