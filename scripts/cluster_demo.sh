#!/bin/sh
# cluster_demo.sh — the kill-a-node acceptance drill behind `make
# cluster-demo`: boot a 3-node crowdd cluster, spray a simulated device
# fleet across all three nodes with crowdload, hard-kill (SIGKILL) one
# node while uploads are still in flight, and require the survivors to
# converge — every acknowledged submission present on every live node,
# bins bit-identical. crowdload exits non-zero on any loss, and so does
# this script.
#
#   DEVICES    fleet size (default 2400 — big enough that the kill lands
#              mid-run)
#   BASE_PORT  first of three consecutive ports (default 8081)
#   KILL_AFTER seconds between load start and the node kill (default 2)
set -eu
cd "$(dirname "$0")/.."

GO=${GO:-go}
devices=${DEVICES:-2400}
base_port=${BASE_PORT:-8081}
kill_after=${KILL_AFTER:-2}

$GO build -o /tmp/crowdd ./cmd/crowdd
$GO build -o /tmp/crowdload ./cmd/crowdload

p1=$base_port
p2=$((base_port + 1))
p3=$((base_port + 2))
u1="http://127.0.0.1:$p1"
u2="http://127.0.0.1:$p2"
u3="http://127.0.0.1:$p3"

/tmp/crowdd -addr "127.0.0.1:$p1" -node-id n1 -peers "n2=$u2,n3=$u3" &
pid1=$!
/tmp/crowdd -addr "127.0.0.1:$p2" -node-id n2 -peers "n1=$u1,n3=$u3" &
pid2=$!
/tmp/crowdd -addr "127.0.0.1:$p3" -node-id n3 -peers "n1=$u1,n2=$u2" &
pid3=$!

cleanup() {
    kill "$pid1" "$pid2" "$pid3" 2>/dev/null || true
    wait 2>/dev/null || true
}
trap cleanup EXIT INT TERM

# Wait until all three nodes answer /healthz.
for u in "$u1" "$u2" "$u3"; do
    i=0
    until curl -sf -o /dev/null "$u/healthz"; do
        i=$((i + 1))
        [ "$i" -lt 50 ] || { echo "cluster_demo: $u never became healthy" >&2; exit 1; }
        sleep 0.1
    done
done
echo "cluster_demo: 3 nodes up on ports $p1-$p3"

/tmp/crowdload -addr "$u1" -peers "$u2,$u3" -devices "$devices" &
load_pid=$!

# Hard-kill node 3 while the load is still uploading — acknowledged
# submissions must survive it.
sleep "$kill_after"
if ! kill -0 "$load_pid" 2>/dev/null; then
    echo "cluster_demo: load finished before the kill — raise DEVICES or lower KILL_AFTER" >&2
    exit 1
fi
echo "cluster_demo: SIGKILL node n3 (pid $pid3) mid-run"
kill -9 "$pid3" 2>/dev/null || true

status=0
wait "$load_pid" || status=$?
if [ "$status" -ne 0 ]; then
    echo "cluster_demo: FAILED — crowdload exited $status (acknowledged submissions lost or cluster diverged)" >&2
    exit "$status"
fi
echo "cluster_demo: PASSED — node killed mid-run, zero acknowledged-submission loss, bins converged"
