#!/bin/sh
# check_godoc.sh — every internal package must open with a package doc
# comment ("// Package <name> ...") stating its paper section or design
# role. Run from the repo root; `make godoc-check` wires it into ci.
set -eu

fail=0
for dir in internal/*/; do
    pkg=$(basename "$dir")
    # Skip directories without Go sources (none today, but cheap).
    ls "$dir"*.go >/dev/null 2>&1 || continue
    if ! grep -l "^// Package $pkg " "$dir"*.go >/dev/null 2>&1; then
        echo "godoc-check: $dir has no '// Package $pkg ...' doc comment" >&2
        fail=1
    fi
done
if [ "$fail" -eq 0 ]; then
    echo "godoc-check: every internal package documents its role"
fi
exit "$fail"
