#!/bin/sh
# bench_bins.sh — measure the bins read path, exact recompute vs sketch
# fold, across a corpus-size sweep (1k / 10k / 100k devices over 10
# models) and record the numbers as BENCH_10.json (or $BENCH_OUT,
# relative to the repo root). Each measured read follows a commit, so
# both paths pay their invalidation cost. The measurement lives in
# internal/server/bench_bins_test.go, gated behind $BENCH_BINS_OUT so
# plain `go test ./...` never pays for it. `make bench` wires this in;
# compare runs with
#   scripts/bench_diff.sh BENCH_10.json /tmp/bench10-new.json
# (ns_per_op regresses upward, speedup_vs_exact downward).
set -eu
cd "$(dirname "$0")/.."

out=${BENCH_OUT:-BENCH_10.json}
case "$out" in
/*) abs=$out ;;
*) abs="$(pwd)/$out" ;;
esac

log=$(mktemp)
trap 'rm -f "$log"' EXIT

# go test output is captured, not piped: a pipe would mask its exit
# status under plain POSIX sh.
if ! BENCH_BINS_OUT="$abs" go test ./internal/server \
    -run '^TestBinsReadLatencyBench$' -count=1 -v -timeout 20m >"$log" 2>&1; then
    cat "$log" >&2
    exit 1
fi
grep -E 'bins corpus=' "$log"

echo "bench_bins: wrote $out"
