#!/bin/sh
# bench_ingest.sh — measure JSON-per-POST vs binary streaming ingest
# throughput (submissions/sec + ack p99 at batch sizes 1, 16, 256) over
# a real HTTP listener and record the numbers as BENCH_8.json (or
# $BENCH_OUT, relative to the repo root). The measurement lives in
# internal/server/bench_ingest_test.go, gated behind $BENCH_INGEST_OUT
# so plain `go test ./...` never pays for it. `make bench` wires this
# in; compare runs with
#   scripts/bench_diff.sh BENCH_8.json /tmp/bench8-new.json
# (ratio_vs_json and submissions_per_sec regress downward, ack_p99_ms
# upward).
set -eu
cd "$(dirname "$0")/.."

out=${BENCH_OUT:-BENCH_8.json}
case "$out" in
/*) abs=$out ;;
*) abs="$(pwd)/$out" ;;
esac

log=$(mktemp)
trap 'rm -f "$log"' EXIT

# go test output is captured, not piped: a pipe would mask its exit
# status under plain POSIX sh.
if ! BENCH_INGEST_OUT="$abs" go test ./internal/server \
    -run '^TestIngestThroughputBench$' -count=1 -v >"$log" 2>&1; then
    cat "$log" >&2
    exit 1
fi
grep -E 'json per-POST|wire k=' "$log"

echo "bench_ingest: wrote $out"
