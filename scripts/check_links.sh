#!/bin/sh
# check_links.sh — every relative markdown link in the top-level docs
# must resolve to a file or directory in the tree. External (http),
# anchor-only and mailto links are skipped. Run from the repo root;
# `make links-check` wires it into ci.
set -eu

fail=0
# PAPERS.md is excluded: it is retrieved related-work text whose figure
# references never shipped with it.
for f in README.md EXPERIMENTS.md DESIGN.md ROADMAP.md docs/*.md; do
    [ -f "$f" ] || continue
    dir=$(dirname "$f")
    # Pull out every ](target) — our links never contain spaces.
    for link in $(grep -o '](\([^)]*\))' "$f" | sed 's/^](//; s/)$//'); do
        case "$link" in
        http://* | https://* | mailto:* | \#*) continue ;;
        esac
        target=${link%%#*}
        [ -n "$target" ] || continue
        if [ ! -e "$dir/$target" ]; then
            echo "links-check: $f links to missing $link" >&2
            fail=1
        fi
    done
done
if [ "$fail" -eq 0 ]; then
    echo "links-check: all relative markdown links resolve"
fi
exit "$fail"
