#!/bin/sh
# bench_run.sh — run the headline hot-path benchmarks and record the
# numbers as BENCH_5.json (or $BENCH_OUT). The raw `go test -bench`
# output goes to stdout in benchstat-comparable form; pipe it to a file
# and feed two such files to benchstat for a before/after comparison.
# `make bench` wires this in.
#
#   BENCH_OUT    destination JSON (default BENCH_5.json)
#   BENCH_COUNT  -count passed to go test (default 1; with >1 the JSON
#                records the last run of each benchmark)
#   BENCH_TIME   -benchtime (default 100000x: enough iterations for
#                stable numbers while bounding the trace memory the
#                device benchmark accumulates)
set -eu
cd "$(dirname "$0")/.."

out=${BENCH_OUT:-BENCH_5.json}
count=${BENCH_COUNT:-1}
benchtime=${BENCH_TIME:-100000x}

tmp=$(mktemp)
trap 'rm -f "$tmp"' EXIT

go test -run '^$' \
    -bench '^(BenchmarkDeviceStep|BenchmarkThermalStep|BenchmarkTableII)$' \
    -benchmem -count "$count" -benchtime "$benchtime" . | tee "$tmp"

# One JSON line per benchmark so bench_diff.sh can parse it with awk —
# no jq in the toolchain.
awk '
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    if (!(name in seen)) { order[++n] = name; seen[name] = 1 }
    for (i = 2; i <= NF; i++) {
        if ($i == "ns/op")     ns[name] = $(i - 1)
        if ($i == "allocs/op") al[name] = $(i - 1)
    }
}
END {
    if (n == 0) { print "bench_run: no benchmark lines parsed" > "/dev/stderr"; exit 1 }
    printf "{\n  \"benchmarks\": [\n"
    for (i = 1; i <= n; i++) {
        name = order[i]
        printf "    {\"name\": \"%s\", \"ns_per_op\": %s, \"allocs_per_op\": %s}%s\n", \
            name, ns[name], al[name], (i < n ? "," : "")
    }
    printf "  ]\n}\n"
}
' "$tmp" >"$out"

echo "bench_run: wrote $out"
