#!/bin/sh
# bench_fleet.sh — run the fleet-engine benchmark and record the numbers
# as BENCH_9.json (or $BENCH_OUT). BenchmarkFleetStep reports dev-steps/s
# (devices × steps per wall second); at the 100 ms control step a device
# needs 10 steps per simulated second, so ≥10M dev-steps/s means a
# million-device fleet runs faster than real time. bench_diff.sh compares
# devices_steps_per_sec direction-aware: lower is a regression.
#
#   BENCH_OUT    destination JSON (default BENCH_9.json)
#   BENCH_COUNT  -count passed to go test (default 1)
#   BENCH_TIME   -benchtime (default 2s)
set -eu
cd "$(dirname "$0")/.."

out=${BENCH_OUT:-BENCH_9.json}
count=${BENCH_COUNT:-1}
benchtime=${BENCH_TIME:-2s}

tmp=$(mktemp)
trap 'rm -f "$tmp"' EXIT

go test -run '^$' -bench '^BenchmarkFleetStep$' \
    -count "$count" -benchtime "$benchtime" . | tee "$tmp"

awk '
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    if (!(name in seen)) { order[++n] = name; seen[name] = 1 }
    for (i = 2; i <= NF; i++) {
        if ($i == "ns/op")       ns[name] = $(i - 1)
        if ($i == "dev-steps/s") rate[name] = $(i - 1)
    }
}
END {
    if (n == 0) { print "bench_fleet: no benchmark lines parsed" > "/dev/stderr"; exit 1 }
    printf "{\n  \"benchmarks\": [\n"
    for (i = 1; i <= n; i++) {
        name = order[i]
        printf "    {\"name\": \"%s\", \"ns_per_op\": %s, \"devices_steps_per_sec\": %s}%s\n", \
            name, ns[name], rate[name], (i < n ? "," : "")
        printf "bench_fleet: %s: %.2fM dev-steps/s — 1M-device fleet at %.2fx real time\n", \
            name, rate[name] / 1e6, rate[name] / 1e7 > "/dev/stderr"
    }
    printf "  ]\n}\n"
}
' "$tmp" >"$out"

echo "bench_fleet: wrote $out"
