// LG G5 anomaly: replay the paper's Fig. 10 detective story. The same chip
// benchmarks ~20% worse when the Monsoon supplies the battery's *nominal*
// 3.85 V than when it supplies the battery's 4.4 V maximum — because the OS
// throttles the CPU on low input voltage, a non-thermal throttle that also
// afflicts phones with aged batteries.
//
//	go run ./examples/lgg5
package main

import (
	"fmt"
	"log"
	"time"

	"accubench/internal/accubench"
	"accubench/internal/battery"
	"accubench/internal/device"
	"accubench/internal/monsoon"
	"accubench/internal/silicon"
	"accubench/internal/soc"
	"accubench/internal/units"
)

func main() {
	model := soc.LGG5()
	fmt.Printf("%s battery label: nominal %v, maximum %v\n",
		model.Name, model.Battery.Nominal, model.Battery.Maximum)
	fmt.Printf("hidden OS policy: cap CPU at %v when input voltage < %v\n\n",
		model.VoltageThrottle.CapFreq, model.VoltageThrottle.Threshold)

	score385, freq385 := bench(model, monsoon.New(3.85).Supply(), 1)
	fmt.Printf("Monsoon at nominal 3.85V: score %4.0f, mean freq %v  ← mysteriously slow\n", score385, freq385)

	score44, freq44 := bench(model, monsoon.New(4.40).Supply(), 2)
	fmt.Printf("Monsoon at maximum 4.40V: score %4.0f, mean freq %v\n", score44, freq44)

	pack := battery.NewBattery(model.Battery.Capacity, model.Battery.Nominal, model.Battery.InternalOhms)
	scoreBat, freqBat := bench(model, pack, 3)
	fmt.Printf("fresh stock battery:      score %4.0f, mean freq %v\n\n", scoreBat, freqBat)

	fmt.Printf("3.85V vs battery: %.0f%% slower — the paper's ≈20%% anomaly\n",
		(1-score385/scoreBat)*100)
	fmt.Printf("4.40V vs battery: %+.0f%% — on par; raising the channel voltage is the fix\n\n",
		(score44/scoreBat-1)*100)

	// The ageing connection the paper draws: the same policy bites a worn
	// pack whose voltage sags under load.
	aged := battery.NewBattery(model.Battery.Capacity, model.Battery.Nominal, 0.45)
	scoreAged, freqAged := bench(model, aged, 4)
	fmt.Printf("aged battery (high internal resistance): score %4.0f, mean freq %v — %0.f%% slower,\n",
		scoreAged, freqAged, (1-scoreAged/scoreBat)*100)
	fmt.Println("the 'old iPhone' effect: user-perceived slowdown without any thermal cause.")
}

func bench(model *soc.DeviceModel, src battery.Source, seed int64) (float64, units.MegaHertz) {
	dev, err := device.New(device.Config{
		Name:    "g5-dut",
		Model:   model,
		Corner:  silicon.ProcessCorner{Bin: 0, Leakage: 1.0},
		Ambient: 26,
		Seed:    seed,
		Source:  src,
	})
	if err != nil {
		log.Fatal(err)
	}
	mon := monsoon.New(model.Battery.Nominal)
	cfg := accubench.DefaultConfig(accubench.Unconstrained)
	cfg.Warmup = time.Minute
	cfg.Workload = 2 * time.Minute
	cfg.Iterations = 2
	// KeepSource: the Monsoon measures, the chosen source powers.
	res, err := (&accubench.Runner{Device: dev, Monitor: mon, KeepSource: true, Config: cfg}).Run()
	if err != nil {
		log.Fatal(err)
	}
	var freq units.MegaHertz
	if len(res.Iterations) > 0 {
		freq = res.Iterations[len(res.Iterations)-1].MeanBigFreq
	}
	return res.MeanScore(), freq
}
