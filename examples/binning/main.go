// Binning: the paper's §VI future work, end to end. A crowd of same-model
// devices runs ACCUBENCH; the scores are clustered with exact 1-D k-means
// to *discover* the manufacturer's hidden bins and rank each device against
// its peers ("we plan to create our own bins by clustering the performance
// data using unstructured learning algorithms").
//
// The crowd is Nexus 5s: the SD-800's voltage binning is real and discrete
// (paper Table I). The demo hides two manufacturing grades — golden and
// leaky silicon. Finer grades blur together under UNCONSTRAINED scoring
// because the Nexus 5's core-hotplug throttling is chaotic near the 80 °C
// trip (the paper saw the same: "time spent at temperature is not
// sufficient to capture the complexities of thermal throttling").
//
//	go run ./examples/binning
package main

import (
	"fmt"
	"log"
	"sort"
	"time"

	"accubench/internal/accubench"
	"accubench/internal/cluster"
	"accubench/internal/device"
	"accubench/internal/monsoon"
	"accubench/internal/silicon"
	"accubench/internal/sim"
	"accubench/internal/soc"
	"accubench/internal/stats"
)

const crowd = 24 // devices contributing scores

// grades are the hidden manufacturing outcomes: a voltage bin from the
// paper's Table I plus the leakage corner that put the chip there. Grade 0
// is the best silicon (slow transistors, low leak, binned at high voltage).
var grades = []struct {
	bin  silicon.Bin
	leak float64
}{
	{0, 0.55}, // golden sample: slow, quiet transistors at high voltage
	{3, 1.72}, // leaky sample: fast transistors, throttles hard
}

func main() {
	src := sim.NewSource(2024, "crowd")

	fmt.Printf("benchmarking %d Nexus 5 units…\n", crowd)
	scores := make([]float64, crowd)
	hidden := make([]int, crowd)
	for i := 0; i < crowd; i++ {
		g := src.Intn(len(grades))
		hidden[i] = g
		corner := silicon.ProcessCorner{
			Bin: grades[g].bin,
			// Within-grade silicon still varies a little.
			Leakage: grades[g].leak * src.LogNormal(0, 0.02),
		}
		mon := monsoon.New(soc.Nexus5().Battery.Nominal)
		dev, err := device.New(device.Config{
			Name:    fmt.Sprintf("n5-%02d", i),
			Model:   soc.Nexus5(),
			Corner:  corner,
			Ambient: 26,
			Seed:    int64(1000 + i),
			Source:  mon.Supply(),
		})
		if err != nil {
			log.Fatal(err)
		}
		cfg := accubench.DefaultConfig(accubench.Unconstrained)
		cfg.Warmup = time.Minute
		cfg.Workload = 3 * time.Minute
		cfg.Iterations = 2
		res, err := (&accubench.Runner{Device: dev, Monitor: mon, Config: cfg}).Run()
		if err != nil {
			log.Fatal(err)
		}
		scores[i] = res.MeanScore()
	}

	// Discover the bin structure from scores alone.
	k, err := cluster.ChooseK(scores, 6)
	if err != nil {
		log.Fatal(err)
	}
	asg, err := cluster.KMeans1D(scores, k)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndiscovered %d score clusters (silhouette %.2f; true grade count %d):\n",
		k, cluster.Silhouette(scores, asg), len(grades))
	for c, centroid := range asg.Centroids {
		n := 0
		for _, l := range asg.Labels {
			if l == c {
				n++
			}
		}
		fmt.Printf("  cluster %d: centroid %.0f, %d devices\n", c, centroid, n)
	}

	// How well do discovered clusters recover the hidden grades? Grade 0
	// (best silicon) should land in the highest score cluster, so hidden
	// grade g maps to cluster k-1-g.
	agree := 0
	for i := range scores {
		if hidden[i] == (k-1)-asg.Labels[i] {
			agree++
		}
	}
	fmt.Printf("\nhidden-grade recovery: %d/%d devices (%.0f%%)\n",
		agree, crowd, float64(agree)/crowd*100)

	// Rank the user's own device the way the paper's proposed app would.
	mine := scores[0]
	rank := 1
	for _, s := range scores {
		if s > mine {
			rank++
		}
	}
	sorted := append([]float64(nil), scores...)
	sort.Float64s(sorted)
	fmt.Printf("your device (n5-00, true grade %d): score %.0f, rank %d/%d, fleet median %.0f, fleet spread %.1f%%\n",
		hidden[0], mine, rank, crowd, stats.Median(sorted), stats.Spread(scores))
}
