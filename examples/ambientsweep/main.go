// Ambientsweep: reproduce the paper's Figure 2 effect interactively — the
// same work costs dramatically more energy in a hot environment, because
// leakage current compounds with temperature. Sweeps the THERMABOX setpoint
// and prints energy per fixed workload for a quiet and a leaky chip.
//
//	go run ./examples/ambientsweep
package main

import (
	"fmt"
	"log"
	"time"

	"accubench/internal/accubench"
	"accubench/internal/device"
	"accubench/internal/monsoon"
	"accubench/internal/silicon"
	"accubench/internal/soc"
	"accubench/internal/thermabox"
	"accubench/internal/units"
)

func main() {
	chips := []struct {
		name   string
		corner silicon.ProcessCorner
	}{
		{"quiet silicon (bin-1)", silicon.ProcessCorner{Bin: 1, Leakage: 1.0}},
		{"leaky silicon (bin-3)", silicon.ProcessCorner{Bin: 3, Leakage: 1.7}},
	}
	ambients := []units.Celsius{15, 20, 25, 30, 35, 40}

	fmt.Println("FIXED-FREQUENCY energy for identical work vs ambient temperature (Nexus 5)")
	for _, chip := range chips {
		fmt.Printf("\n%s:\n", chip.name)
		var coldest units.Joules
		for i, amb := range ambients {
			energy, err := measure(chip.corner, amb, int64(100+i))
			if err != nil {
				log.Fatal(err)
			}
			if i == 0 {
				coldest = energy
			}
			ratio := float64(energy) / float64(coldest)
			fmt.Printf("  %v  %8s  %.2f× coldest  %s\n", amb, energy, ratio, bar(ratio))
		}
	}
	fmt.Println("\nGuo et al.'s refrigerator trick, quantified: cold ambient = cheaper joules.")
}

func measure(corner silicon.ProcessCorner, ambient units.Celsius, seed int64) (units.Joules, error) {
	model := soc.Nexus5()
	mon := monsoon.New(model.Battery.Nominal)
	dev, err := device.New(device.Config{
		Name:    "sweep-dut",
		Model:   model,
		Corner:  corner,
		Ambient: ambient,
		Seed:    seed,
		Source:  mon.Supply(),
	})
	if err != nil {
		return 0, err
	}
	boxCfg := thermabox.DefaultConfig()
	boxCfg.Target = ambient
	boxCfg.Seed = seed
	box, err := thermabox.New(boxCfg)
	if err != nil {
		return 0, err
	}
	cfg := accubench.DefaultConfig(accubench.FixedFrequency)
	cfg.Warmup = time.Minute
	cfg.Workload = 3 * time.Minute
	cfg.Iterations = 1
	cfg.CooldownTarget = ambient + 10
	cfg.PinFreq = 729 // throttle-free even at 40 °C
	res, err := (&accubench.Runner{Device: dev, Monitor: mon, Box: box, Config: cfg}).Run()
	if err != nil {
		return 0, err
	}
	return res.Iterations[0].Energy.Energy, nil
}

func bar(ratio float64) string {
	n := int((ratio - 0.9) * 50)
	if n < 0 {
		n = 0
	}
	out := make([]byte, n)
	for i := range out {
		out[i] = '#'
	}
	return string(out)
}
