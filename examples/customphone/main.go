// Customphone: study a handset that is not in the paper. The device model —
// SoC, thermal body, battery, throttling policy — is defined as JSON
// (soc.SaveModel / soc.LoadModel), so extending the study to new hardware
// needs no Go code. This example round-trips a hypothetical 10 nm-class
// phone through JSON, then runs ACCUBENCH on a quiet and a leaky sample of
// it.
//
//	go run ./examples/customphone
package main

import (
	"bytes"
	"fmt"
	"log"
	"time"

	"accubench/internal/accubench"
	"accubench/internal/device"
	"accubench/internal/monsoon"
	"accubench/internal/silicon"
	"accubench/internal/soc"
	"accubench/internal/thermal"
	"accubench/internal/units"
)

// phoneJSON is what a user would keep in a .json file next to their study.
// Built here programmatically (and printed) so the example is self-contained.
func phoneJSON() []byte {
	model := &soc.DeviceModel{
		Name: "Phoenix One",
		SoC: &soc.SoC{
			Name:    "PX-100",
			Process: "10nm",
			Year:    2018,
			Big: soc.Cluster{
				Name:               "Cortex-A75",
				Cores:              4,
				OPPs:               []units.MegaHertz{300, 1056, 1766, 2208, 2650},
				Ceff:               0.70e-9,
				CyclesPerIteration: 1.3e9,
			},
			Little: &soc.Cluster{
				Name:               "Cortex-A55",
				Cores:              4,
				OPPs:               []units.MegaHertz{300, 1056, 1766},
				Ceff:               0.25e-9,
				CyclesPerIteration: 2.6e9,
			},
			Leakage: silicon.LeakageModel{I0: 0.30, Vref: 1.0, VoltExp: 2, Tref: 25, TSlope: 32},
			Uncore:  0.2,
			Voltages: soc.RBCPR{
				Curve: []silicon.VoltagePoint{
					{Freq: 300, Voltage: units.FromMillivolts(700)},
					{Freq: 1056, Voltage: units.FromMillivolts(750)},
					{Freq: 1766, Voltage: units.FromMillivolts(830)},
					{Freq: 2208, Voltage: units.FromMillivolts(920)},
					{Freq: 2650, Voltage: units.FromMillivolts(1000)},
				},
				LeakageTrim: 0.02,
				TempTrim:    0.0005,
				TempRef:     40,
				MaxTrim:     0.08,
			},
			Bins: 1,
		},
		Body: thermal.PhoneBody{
			DieCapacitance:  3,
			CaseCapacitance: 100,
			DieToCase:       0.22,
			CaseToAmbient:   0.48,
		},
		Battery:     soc.BatterySpec{Capacity: 3300, Nominal: 3.85, Maximum: 4.40, InternalOhms: 0.08},
		Thermal:     soc.ThermalPolicy{ThrottleAt: 75, Hysteresis: 5},
		FixedFreq:   1056,
		SensorNoise: 0.3,
	}
	var buf bytes.Buffer
	if err := soc.SaveModel(&buf, model); err != nil {
		log.Fatal(err)
	}
	return buf.Bytes()
}

func main() {
	raw := phoneJSON()
	fmt.Printf("device model defined in %d bytes of JSON (first lines):\n", len(raw))
	for i, line := range bytes.Split(raw, []byte("\n"))[:6] {
		fmt.Printf("  %s\n", line)
		_ = i
	}
	fmt.Println("  ...")

	model, err := soc.LoadModel(bytes.NewReader(raw))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nloaded %q: %s (%s, %d cores)\n\n",
		model.Name, model.SoC.Name, model.SoC.Process, model.SoC.TotalCores())

	for _, chip := range []struct {
		name string
		leak float64
	}{
		{"quiet sample", 0.75},
		{"leaky sample", 1.60},
	} {
		mon := monsoon.New(model.Battery.Nominal)
		dev, err := device.New(device.Config{
			Name:    chip.name,
			Model:   model,
			Corner:  silicon.ProcessCorner{Bin: 0, Leakage: chip.leak},
			Ambient: 26,
			Seed:    int64(len(chip.name)),
			Source:  mon.Supply(),
		})
		if err != nil {
			log.Fatal(err)
		}
		cfg := accubench.DefaultConfig(accubench.Unconstrained)
		cfg.Warmup = time.Minute
		cfg.Workload = 3 * time.Minute
		cfg.Iterations = 2
		res, err := (&accubench.Runner{Device: dev, Monitor: mon, Config: cfg}).Run()
		if err != nil {
			log.Fatal(err)
		}
		it := res.Iterations[len(res.Iterations)-1]
		fmt.Printf("%-12s (leak×%.2f): score %4.0f, %v, mean freq %v, peak die %v\n",
			chip.name, chip.leak, res.MeanScore(), it.Energy.Energy, it.MeanBigFreq, it.PeakDieTemp)
	}
	fmt.Println("\nthe silicon lottery follows your hardware into the simulator — no Go required.")
}
