// Quickstart: build one simulated smartphone, wire it to a simulated
// Monsoon power monitor inside a simulated THERMABOX, and run the paper's
// ACCUBENCH technique on it.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"accubench/internal/accubench"
	"accubench/internal/device"
	"accubench/internal/monsoon"
	"accubench/internal/silicon"
	"accubench/internal/soc"
	"accubench/internal/thermabox"
)

func main() {
	// A Nexus 5 whose chip drew a mediocre ticket in the silicon lottery:
	// voltage bin 2, leaking 40% more than typical silicon.
	model := soc.Nexus5()
	corner := silicon.ProcessCorner{Bin: 2, Leakage: 1.4}

	// The Monsoon replaces the battery (as in the paper) and integrates
	// energy over the workload phase.
	mon := monsoon.New(model.Battery.Nominal)

	dev, err := device.New(device.Config{
		Name:    "my-nexus5",
		Model:   model,
		Corner:  corner,
		Ambient: 26,
		Seed:    42,
		Source:  mon.Supply(),
	})
	if err != nil {
		log.Fatal(err)
	}

	// The THERMABOX holds 26 ± 0.5 °C around the device.
	box, err := thermabox.New(thermabox.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	// Paper-faithful parameters: 3 min warmup, cooldown to target, 5 min
	// π workload, 5 back-to-back iterations. Shrink for the demo.
	cfg := accubench.DefaultConfig(accubench.Unconstrained)
	cfg.Warmup = time.Minute
	cfg.Workload = 2 * time.Minute
	cfg.Iterations = 3

	res, err := (&accubench.Runner{Device: dev, Monitor: mon, Box: box, Config: cfg}).Run()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%s under %v:\n", dev.Describe(), res.Mode)
	for _, it := range res.Iterations {
		fmt.Printf("  iteration %d: %d iterations of π, %v (mean %v), mean freq %v, peak die %v\n",
			it.Index+1, it.Score, it.Energy.Energy, it.Energy.MeanPower, it.MeanBigFreq, it.PeakDieTemp)
	}
	ps, err := res.PerfSummary()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("score %s — the paper's methodology targets ≈1%% RSD\n", ps)
}
