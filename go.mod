module accubench

go 1.22
