// Package repro's root benchmarks regenerate every table and figure of the
// paper's evaluation (quick mode — the shapes hold, error bars widen) and
// measure the hot paths of the simulation substrate.
//
//	go test -bench=. -benchmem
//	go test -bench=BenchmarkTableII -benchtime=1x   # one full regeneration
//
// Each BenchmarkTableX/BenchmarkFigX reports the paper-facing headline
// numbers as custom metrics (variation percentages, ratios) so a bench run
// doubles as a results check.
package repro

import (
	"testing"
	"time"

	"accubench/internal/accubench"
	"accubench/internal/cluster"
	"accubench/internal/device"
	"accubench/internal/experiments"
	"accubench/internal/fleetsim"
	"accubench/internal/monsoon"
	"accubench/internal/silicon"
	"accubench/internal/sim"
	"accubench/internal/soc"
	"accubench/internal/thermal"
	"accubench/internal/workload"
)

func benchOpts(i int) experiments.Options {
	return experiments.Options{Quick: true, Seed: int64(i + 1)}
}

// studyOpts is the fixed-seed variant for study-backed benchmarks
// (Table II, Figures 6–9 and 13). A full regeneration asks for each
// model's study repeatedly under one Options — that is the workload the
// per-Options study cache exists for — so these benchmarks hold the seed
// fixed: the first iteration measures the cold computation, later ones
// the cached steady state, exactly like cmd/experiments -run all.
// Benchmarks whose per-iteration work is not study-shaped keep varying
// seeds via benchOpts.
func studyOpts() experiments.Options {
	return experiments.Options{Quick: true, Seed: 1}
}

// BenchmarkTableI regenerates the Nexus 5 voltage/frequency table.
func BenchmarkTableI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.TableI()
		if len(rows) != 7 {
			b.Fatal("table shape")
		}
	}
}

// BenchmarkTableII regenerates the summary study over all 18 devices and
// reports each chipset's variations as custom metrics.
func BenchmarkTableII(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, _, err := experiments.TableII(studyOpts())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				b.ReportMetric(r.PerfPct, r.Chipset+"-perf-var-%")
				b.ReportMetric(r.EnergyPct, r.Chipset+"-energy-var-%")
			}
		}
	}
}

// BenchmarkFig1 regenerates the fixed-work Nexus 5 bins comparison.
func BenchmarkFig1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, err := experiments.Fig1(benchOpts(i))
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(pts[len(pts)-1].NormEnergy, "bin4-energy-x")
			b.ReportMetric(pts[len(pts)-1].NormTime, "bin4-time-x")
		}
	}
}

// BenchmarkFig2 regenerates the ambient-temperature energy sweep.
func BenchmarkFig2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, err := experiments.Fig2(benchOpts(i))
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(pts[len(pts)-1].NormEnergy, "hot-vs-cold-energy-x")
		}
	}
}

// BenchmarkFig3 regenerates the THERMABOX regulation characterization.
func BenchmarkFig3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig3(benchOpts(i))
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(r.MaxAir-r.MinAir), "air-band-C")
		}
	}
}

// BenchmarkFig4 regenerates the UNCONSTRAINED stages trace.
func BenchmarkFig4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pt, err := experiments.Fig4(benchOpts(i))
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(pt.PeakDie), "peak-die-C")
		}
	}
}

// BenchmarkFig5 regenerates the FIXED-FREQUENCY trace.
func BenchmarkFig5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pt, err := experiments.Fig5(benchOpts(i))
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(pt.PeakDie), "peak-die-C")
		}
	}
}

func benchStudy(b *testing.B, model string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		st, err := experiments.Study(model, studyOpts())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(st.PerfVariationPct(), "perf-var-%")
			b.ReportMetric(st.EnergyVariationPct(), "energy-var-%")
		}
	}
}

// BenchmarkFig6 regenerates the SD-800 (Nexus 5) study.
func BenchmarkFig6(b *testing.B) { benchStudy(b, "Nexus 5") }

// BenchmarkFig7 regenerates the SD-810 (Nexus 6P) study.
func BenchmarkFig7(b *testing.B) { benchStudy(b, "Nexus 6P") }

// BenchmarkFig8 regenerates the SD-820 (LG G5) study.
func BenchmarkFig8(b *testing.B) { benchStudy(b, "LG G5") }

// BenchmarkFig9 regenerates the SD-821 (Google Pixel) study.
func BenchmarkFig9(b *testing.B) { benchStudy(b, "Google Pixel") }

// BenchmarkFig10 regenerates the LG G5 input-voltage anomaly comparison.
func BenchmarkFig10(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig10(benchOpts(i))
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				if r.Supply == "monsoon@3.85V" {
					b.ReportMetric(r.Normalized, "throttled-vs-battery-x")
				}
			}
		}
	}
}

// BenchmarkFig11 regenerates the Pixel frequency/temperature distributions.
func BenchmarkFig11(b *testing.B) {
	for i := 0; i < b.N; i++ {
		st, err := experiments.Fig11(benchOpts(i))
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(st.MeanFreqGapPct, "mean-freq-gap-%")
		}
	}
}

// BenchmarkFig12 regenerates the Nexus 5 frequency/temperature distributions.
func BenchmarkFig12(b *testing.B) {
	for i := 0; i < b.N; i++ {
		st, err := experiments.Fig12(benchOpts(i))
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(st.MeanFreqGapPct, "mean-freq-gap-%")
		}
	}
}

// BenchmarkFig13 regenerates the cross-generation efficiency comparison
// (it needs the full study, so it reuses TableII's work per iteration).
func BenchmarkFig13(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, studies, err := experiments.TableII(studyOpts())
		if err != nil {
			b.Fatal(err)
		}
		rows, err := experiments.Fig13(studies)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(rows[1].IterPerWh/rows[0].IterPerWh, "sd805-vs-sd800-x")
		}
	}
}

// --- Substrate micro-benchmarks -----------------------------------------

// BenchmarkPiKernel measures the real π spigot at the paper's 4,285 digits —
// the honest-compute benchmark iteration itself.
func BenchmarkPiKernel(b *testing.B) {
	if err := workload.Validate(); err != nil {
		b.Fatal(err)
	}
	var sink uint32
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink = workload.Iteration()
	}
	_ = sink
}

// BenchmarkPiKernel1000 measures a shorter spigot run for scaling context.
func BenchmarkPiKernel1000(b *testing.B) {
	var n int
	for i := 0; i < b.N; i++ {
		n += len(workload.PiDigits(1000))
	}
	_ = n
}

// BenchmarkDeviceStep measures one 100 ms control step of a busy device —
// the simulation's innermost loop.
func BenchmarkDeviceStep(b *testing.B) {
	mon := monsoon.New(3.8)
	dev, err := device.New(device.Config{
		Name:    "bench",
		Model:   soc.Nexus5(),
		Corner:  silicon.ProcessCorner{Bin: 2, Leakage: 1.3},
		Ambient: 26,
		Seed:    1,
		Source:  mon.Supply(),
	})
	if err != nil {
		b.Fatal(err)
	}
	dev.StartWorkload()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := dev.Step(100 * time.Millisecond); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkThermalStep measures the RC network integrator alone.
func BenchmarkThermalStep(b *testing.B) {
	body := soc.Nexus5().Body
	nw, die, _, err := body.Build(26)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := nw.Inject(die, 5); err != nil {
			b.Fatal(err)
		}
		nw.Step(100 * time.Millisecond)
	}
	_ = thermal.Network{}
}

// BenchmarkAccubenchIteration measures one full (quick) ACCUBENCH iteration
// end to end: warmup, cooldown, workload, measurement.
func BenchmarkAccubenchIteration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		mon := monsoon.New(3.8)
		dev, err := device.New(device.Config{
			Name:    "bench",
			Model:   soc.Nexus5(),
			Corner:  silicon.ProcessCorner{Bin: 2, Leakage: 1.3},
			Ambient: 26,
			Seed:    int64(i),
			Source:  mon.Supply(),
		})
		if err != nil {
			b.Fatal(err)
		}
		cfg := accubench.DefaultConfig(accubench.Unconstrained)
		cfg.Warmup = 30 * time.Second
		cfg.Workload = time.Minute
		cfg.Iterations = 1
		if _, err := (&accubench.Runner{Device: dev, Monitor: mon, Config: cfg}).Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkKMeans1D measures exact 1-D k-means over a crowd-sized sample.
func BenchmarkKMeans1D(b *testing.B) {
	src := sim.NewSource(1, "bench")
	vals := make([]float64, 500)
	for i := range vals {
		vals[i] = src.Normal(100, 10)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cluster.KMeans1D(vals, 5); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFleetStep measures the batched fleet stepper: one tick over an
// 8192-device Nexus 5 cohort at full tilt, reported as device-steps per
// second. This is the PR-9 headline: at ≥10M dev-steps/s a million-device
// wild fleet steps faster than real time (10 control steps per simulated
// second per device).
func BenchmarkFleetStep(b *testing.B) {
	const devices = 8192
	fl, err := fleetsim.New(fleetsim.Config{
		Seed:      1,
		Cohorts:   []fleetsim.CohortSpec{{Model: soc.Nexus5(), Devices: devices}},
		AmbientLo: 12,
		AmbientHi: 38,
	})
	if err != nil {
		b.Fatal(err)
	}
	c := fl.Cohorts()[0]
	ph := fleetsim.Phase{Busy: true, Wakelock: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Step(0, devices, &ph, 100*time.Millisecond); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	perOp := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
	b.ReportMetric(devices/perOp*1e9, "dev-steps/s")
}
